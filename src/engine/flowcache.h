// Microflow verdict cache with generation-vector coherence (OVS-style
// microflow cache applied to the eBPF fast path).
//
// A miss runs the program normally while a FlowCacheRecorder observes the
// run: which kernel subsystems its helpers consulted (the dependency mask),
// which packet-header bytes it read and wrote (byte-granular bitmasks over a
// bounded 64-byte window), and which conntrack/FDB side effects it performed
// (replay ops). If the run was replayable, the cache stores the verdict, the
// header byte diff and a snapshot of the generation counters of every
// subsystem in the dependency mask.
//
// A later packet with identical ctx-visible fields and identical bytes under
// the read mask hits the entry: the cache validates the generation vector
// with relaxed loads (every mutating kernel object bumps a monotonic
// counter), re-performs the recorded conntrack lookups (comparing the
// observed outputs, so per-packet conntrack churn needs no generation
// traffic), replays the byte diff and returns the stored verdict for a small
// fixed CostModel charge — skipping the interpreter entirely.
//
// Coherence argument (DESIGN.md §12): a cached verdict is a pure function of
//   (a) the bytes under the read mask + ctx fields   -> compared exactly,
//   (b) kernel state reachable through helpers        -> generation-guarded
//                                                        or replay-validated,
//   (c) the deployed program                          -> epoch-guarded.
// Runs that escape this model (ktime, map access, reads beyond the window,
// AF_XDP, aborts) are conservatively uncacheable.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "kernel/kernel.h"
#include "kernel/netdev.h"
#include "net/headers.h"
#include "net/packet.h"
#include "util/metrics.h"

namespace linuxfp::engine {

// --- dependency mask ---------------------------------------------------------

// One bit per kernel subsystem a helper can consult during a run. The cache
// only validates the generation counters of subsystems in the mask, so a
// pure L2 program is not invalidated by route churn and vice versa.
enum DepBit : std::uint32_t {
  kDepFib = 1u << 0,
  kDepBridge = 1u << 1,
  kDepNeigh = 1u << 2,
  kDepNetfilter = 1u << 3,
  kDepIpSet = 1u << 4,
  kDepConntrack = 1u << 5,
  kDepDevice = 1u << 6,  // link/addr/sysctl/master config
};

// Snapshot of every subsystem generation counter; matches() only compares
// the components selected by the dependency mask.
struct GenVector {
  std::uint64_t fib = 0;
  std::uint64_t bridge = 0;
  std::uint64_t neigh = 0;
  std::uint64_t netfilter = 0;
  std::uint64_t ipset = 0;
  std::uint64_t conntrack = 0;
  std::uint64_t dev = 0;

  static GenVector snapshot(const kern::Kernel& kernel) {
    GenVector g;
    g.fib = kernel.fib().generation();
    g.bridge = kernel.bridge_generation();
    g.neigh = kernel.neigh().generation();
    g.netfilter = kernel.netfilter().generation();
    g.ipset = kernel.ipsets().generation();
    g.conntrack = kernel.conntrack().generation();
    g.dev = kernel.dev_generation();
    return g;
  }

  bool matches(const GenVector& current, std::uint32_t deps) const {
    if ((deps & kDepFib) && fib != current.fib) return false;
    if ((deps & kDepBridge) && bridge != current.bridge) return false;
    if ((deps & kDepNeigh) && neigh != current.neigh) return false;
    if ((deps & kDepNetfilter) && netfilter != current.netfilter) return false;
    if ((deps & kDepIpSet) && ipset != current.ipset) return false;
    if ((deps & kDepConntrack) && conntrack != current.conntrack) return false;
    if ((deps & kDepDevice) && dev != current.dev) return false;
    return true;
  }
};

// --- replay ops --------------------------------------------------------------

// A conntrack consultation recorded during the cached run. On a hit the
// cache re-performs the identical lookup (so per-packet side effects —
// last_seen refresh, packet counts, NEW->ESTABLISHED promotion — happen
// exactly as a full run would) and compares the observed outputs against
// what the cached run saw; any difference falls back to a full run. This is
// why per-packet conntrack refreshes do not need to bump the conntrack
// generation counter.
struct CtReplayOp {
  net::FlowKey key;
  bool lookup_or_create = false;  // ipt path creates; ct_lookup is pure
  // Observations from the recorded run:
  bool expect_found = true;            // pure-lookup only
  std::uint8_t expect_ct_state = 0;    // 1 = ESTABLISHED
  bool expect_reply_dir = false;
  bool expect_rewrite = false;
  std::uint32_t expect_rewrite_addr = 0;
  std::uint16_t expect_rewrite_port = 0;
};

// An FDB refresh performed by bpf_fdb_lookup during the cached run. Replayed
// on every hit so fast-path traffic keeps its bridge FDB entry alive (entry
// aging support) without the interpreter. Same-port refreshes do not bump
// the bridge generation, so the replay never self-invalidates.
struct FdbReplayOp {
  int bridge_ifindex = 0;
  net::MacAddr smac;
  std::uint16_t vlan = 0;
  int port_ifindex = 0;
};

// --- recorder ----------------------------------------------------------------

// Rides along with one VM run and captures everything the cache needs to
// decide cacheability and build an entry. Owned by the FlowCache (one per
// CPU, reused per packet); the VM and the kernel helpers call into it.
class FlowCacheRecorder {
 public:
  // Bounded header window the cache understands. Reads or writes beyond it
  // make the run uncacheable (Eth+IPv4+TCP is 54 bytes; 64 covers the
  // realistic header stack while keeping the diff fixed-size).
  static constexpr std::size_t kHeaderWindow = 64;

  void begin(const net::Packet& pkt) {
    deps_ = 0;
    read_mask_ = 0;
    write_mask_ = 0;
    uncacheable_ = false;
    reason_ = nullptr;
    ct_ops_.clear();
    fdb_ops_.clear();
    pre_len_ = pkt.size() < kHeaderWindow ? pkt.size() : kHeaderWindow;
    std::memcpy(pre_bytes_.data(), pkt.data(), pre_len_);
  }

  void add_dep(std::uint32_t bits) { deps_ |= bits; }

  void mark_uncacheable(const char* reason) {
    uncacheable_ = true;
    reason_ = reason;
  }
  bool uncacheable() const { return uncacheable_; }
  const char* uncacheable_reason() const { return reason_; }

  void note_packet_read(std::size_t off, std::size_t len) {
    if (off + len > kHeaderWindow) {
      mark_uncacheable("packet read beyond header window");
      return;
    }
    read_mask_ |= mask_bits(off, len);
  }
  void note_packet_write(std::size_t off, std::size_t len) {
    if (off + len > kHeaderWindow) {
      mark_uncacheable("packet write beyond header window");
      return;
    }
    write_mask_ |= mask_bits(off, len);
  }

  void add_ct_replay(const CtReplayOp& op) { ct_ops_.push_back(op); }
  void add_fdb_refresh(const FdbReplayOp& op) { fdb_ops_.push_back(op); }

  std::uint32_t deps() const { return deps_; }
  std::uint64_t read_mask() const { return read_mask_; }
  std::uint64_t write_mask() const { return write_mask_; }
  const std::array<std::uint8_t, kHeaderWindow>& pre_bytes() const {
    return pre_bytes_;
  }
  std::size_t pre_len() const { return pre_len_; }
  const std::vector<CtReplayOp>& ct_ops() const { return ct_ops_; }
  const std::vector<FdbReplayOp>& fdb_ops() const { return fdb_ops_; }

 private:
  static std::uint64_t mask_bits(std::size_t off, std::size_t len) {
    // len <= 8 in practice (sized loads/stores) but helpers can touch
    // larger spans; build the run without shifting by >= 64.
    if (len == 0) return 0;
    std::uint64_t span = (len >= 64) ? ~0ull : ((1ull << len) - 1);
    return span << off;
  }

  std::uint32_t deps_ = 0;
  std::uint64_t read_mask_ = 0;   // 1 bit per byte of the header window
  std::uint64_t write_mask_ = 0;
  bool uncacheable_ = false;
  const char* reason_ = nullptr;
  std::size_t pre_len_ = 0;
  std::array<std::uint8_t, kHeaderWindow> pre_bytes_{};
  std::vector<CtReplayOp> ct_ops_;
  std::vector<FdbReplayOp> fdb_ops_;
};

// --- the cache ---------------------------------------------------------------

// Registry counters mirroring FlowCacheStats ("flowcache.*" names), shared
// by every per-CPU cache of an attachment (Counter bumps are relaxed
// atomics, safe from concurrent workers). `registry` gates emission the same
// way the attachment's other mirrors do.
struct FlowCacheMetrics {
  util::MetricsRegistry* registry = nullptr;
  util::Counter* hits = nullptr;
  util::Counter* misses = nullptr;
  util::Counter* invalidations = nullptr;
  util::Counter* evictions = nullptr;
  util::Counter* uncacheable = nullptr;
  util::Counter* replay_mismatch = nullptr;

  bool on() const { return registry != nullptr && registry->enabled(); }
};

struct FlowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  // stale generation vector or epoch
  std::uint64_t evictions = 0;      // live entry replaced by a new flow
  std::uint64_t uncacheable = 0;    // miss whose run could not be cached
  std::uint64_t replay_mismatch = 0;  // conntrack replay observed a change

  FlowCacheStats& operator+=(const FlowCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    invalidations += o.invalidations;
    evictions += o.evictions;
    uncacheable += o.uncacheable;
    replay_mismatch += o.replay_mismatch;
    return *this;
  }
};

// Per-CPU set-associative exact-match cache indexed by the packet's RSS
// Toeplitz hash (computed once at the simulated NIC and stashed in the
// packet). Set-associative (OVS-EMC style) rather than direct-mapped because
// the symmetric RSS key is 16-bit periodic — a hard requirement for
// bidirectional flow affinity — which collapses the hash image enough that
// distinct 5-tuples routinely share a hash; the ways absorb those
// collisions. Single-threaded by construction — each engine worker owns its
// cache, and the sim path owns CPU 0's — so probes and inserts never
// synchronize; only the generation-counter loads are atomic.
class FlowCache {
 public:
  static constexpr std::size_t kWays = 4;

  explicit FlowCache(std::size_t entries = 1024);

  struct Hit {
    std::uint64_t act = 0;  // raw XDP action code; caller maps to a verdict
    int redirect_ifindex = 0;
  };

  // Probes the cache for `pkt`. On a hit: validates the generation vector,
  // re-performs recorded conntrack ops, replays the header diff onto the
  // packet and fills `out`. Returns false on miss/invalid/mismatch (the
  // caller runs the program; stats are updated either way).
  bool try_hit(net::Packet& pkt, int ingress_ifindex, std::uint64_t epoch,
               kern::Kernel& kernel, Hit* out);

  // Builds an entry from a completed miss run. `rec` is the recorder that
  // observed the run; `pkt` is the post-run packet (write-mask bytes are
  // captured from it). No-op (counted as uncacheable) if the run escaped the
  // replayable model.
  void insert(const net::Packet& pkt, int ingress_ifindex, std::uint64_t epoch,
              const kern::Kernel& kernel, const FlowCacheRecorder& rec,
              std::uint64_t act, int redirect_ifindex, bool cacheable);

  // Recorder for the next miss on this CPU (reused across packets).
  FlowCacheRecorder& recorder() { return recorder_; }

  // Mirrors stat events into registry counters (control-plane call).
  void set_metrics(const FlowCacheMetrics& m) { metrics_ = m; }

  const FlowCacheStats& stats() const { return stats_; }
  std::size_t capacity() const { return entries_.size(); }
  std::size_t live_entries() const;
  // Whether a valid entry for this flow hash exists at the given program
  // epoch (steering-migration coherence tests: the hash's warm state is
  // per-CPU, so after a migration the old CPU's cache may still hold it and
  // the new CPU's must re-record).
  bool contains(std::uint32_t rss_hash, std::uint64_t epoch) const;

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t epoch = 0;
    std::uint32_t rss_hash = 0;
    // Exact-match key: every ctx-visible field plus the header bytes the
    // program read. For any program that parses Ethernet + IPv4 + L4 this
    // is a superset of (ingress ifindex, eth addrs/ethertype, 5-tuple).
    int ingress_ifindex = 0;
    std::uint32_t pkt_size = 0;
    std::uint32_t rx_queue = 0;
    std::uint16_t vlan_tci = 0;
    std::uint32_t deps = 0;
    GenVector gens;
    std::uint64_t read_mask = 0;
    std::uint64_t write_mask = 0;
    std::array<std::uint8_t, FlowCacheRecorder::kHeaderWindow> pre_bytes{};
    std::array<std::uint8_t, FlowCacheRecorder::kHeaderWindow> post_bytes{};
    std::uint64_t act = 0;
    int redirect_ifindex = 0;
    std::vector<CtReplayOp> ct_ops;
    std::vector<FdbReplayOp> fdb_ops;
  };

  // First entry of the hash's set; the set spans kWays consecutive entries.
  std::size_t set_base(std::uint32_t hash) const {
    return (hash & set_mask_) * kWays;
  }
  static bool key_matches(const Entry& e, const net::Packet& pkt,
                          int ingress_ifindex, std::uint32_t hash);
  static bool replay_ct(const Entry& e, kern::Kernel& kernel);
  static void replay_fdb(const Entry& e, kern::Kernel& kernel);

  void note(util::Counter* c) {
    if (metrics_.on()) util::bump(c);
  }

  std::size_t set_mask_ = 0;
  std::vector<Entry> entries_;
  std::vector<std::uint8_t> victim_;  // per-set round-robin eviction cursor
  FlowCacheRecorder recorder_;
  FlowCacheStats stats_;
  FlowCacheMetrics metrics_;
};

}  // namespace linuxfp::engine
