// Receive Side Scaling: the NIC-side flow classifier that picks an rx queue
// for each ingress packet, mirroring the Linux/mlx5 pipeline the paper's
// multi-core experiments rely on (Pktgen varies source ports precisely so
// this hash spreads load over cores).
//
// The hash is a Toeplitz hash over the IPv4 5-tuple with the "symmetric"
// key convention (0x6d5a repeated, as recommended for e.g. Suricata): the
// repeated 2-byte pattern makes hash(src,dst) == hash(dst,src), so both
// directions of a flow land on the same queue. Non-IP frames (ARP) hash to
// queue 0, like a NIC that cannot parse the header.
//
// Queue selection goes through a 128-entry indirection table (the ethtool -x
// "RETA"), initialized round-robin over the configured queue count.
#pragma once

#include <array>
#include <cstdint>

#include "net/packet.h"

namespace linuxfp::engine {

inline constexpr std::size_t kRetaSize = 128;

// Toeplitz hash of `len` bytes of input under the repeated 0x6d5a key.
std::uint32_t toeplitz_hash(const std::uint8_t* data, std::size_t len);

class RssClassifier {
 public:
  explicit RssClassifier(unsigned queues);

  unsigned queues() const { return queues_; }

  // Flow hash of the packet (0 when the frame has no IPv4 header).
  std::uint32_t hash(const net::Packet& pkt) const;

  // rx queue for the packet: reta[hash & (kRetaSize-1)].
  unsigned queue_for(const net::Packet& pkt) const {
    return reta_[hash(pkt) & (kRetaSize - 1)];
  }

  const std::array<unsigned, kRetaSize>& reta() const { return reta_; }

 private:
  unsigned queues_;
  std::array<unsigned, kRetaSize> reta_;
};

}  // namespace linuxfp::engine
