// Receive Side Scaling: the NIC-side flow classifier that picks an rx queue
// for each ingress packet, mirroring the Linux/mlx5 pipeline the paper's
// multi-core experiments rely on (Pktgen varies source ports precisely so
// this hash spreads load over cores).
//
// The hash is a Toeplitz hash over the IPv4 5-tuple with the Microsoft
// reference key, made symmetric by canonicalizing the endpoint order before
// hashing (DPDK's symmetric_toeplitz_sort): hash(src,dst) == hash(dst,src),
// so both directions of a flow land on the same queue, without the hash-image
// collapse a 16-bit-periodic "symmetric key" would cause (the flow cache
// indexes on this hash and needs its full strength). Non-IP frames (ARP,
// LLDP) fall back to an L2 Toeplitz input — canonicalized src/dst MAC plus
// ethertype — so unparsable traffic still spreads over queues instead of
// pinning to reta_[0] and colliding in one flowcache set.
//
// Queue selection goes through a 128-entry indirection table (the ethtool -x
// "RETA"), initialized round-robin over the configured queue count.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace linuxfp::engine {

inline constexpr std::size_t kRetaSize = 128;

// Toeplitz hash of `len` bytes of input under the Microsoft reference key.
std::uint32_t toeplitz_hash(const std::uint8_t* data, std::size_t len);

// Toeplitz flow hash of the packet. IPv4 frames hash the canonicalized
// 5-tuple (ports omitted for fragments so every fragment of a datagram
// hashes identically); anything else hashes the canonicalized MAC pair +
// ethertype. Stateless — the hash is a property of the packet alone; the
// classifier only adds queue steering on top.
std::uint32_t rss_hash_of(const net::Packet& pkt);

// Returns the packet's flow hash, computing and stashing it in the packet's
// rss_hash metadata on first use (skb->hash memoization). Every consumer —
// engine queue steering, the flow cache, sim-path probes — goes through here
// so the hash is computed at most once per packet.
std::uint32_t rss_hash_cached(net::Packet& pkt);

// RETA entries are atomics because the table is written at runtime: the
// engine's worker watchdog repairs steering away from a stuck queue
// (exclude_queue) from the slow-path thread while the producer keeps
// classifying. Plain relaxed loads/stores — each entry is independent and a
// momentarily stale read only steers one packet to the old queue.
class RssClassifier {
 public:
  explicit RssClassifier(unsigned queues);

  unsigned queues() const { return queues_; }

  // Flow hash of the packet (see rss_hash_of).
  std::uint32_t hash(const net::Packet& pkt) const { return rss_hash_of(pkt); }

  // rx queue for an already-computed flow hash.
  unsigned queue_for_hash(std::uint32_t hash) const {
    return reta_[hash & (kRetaSize - 1)].load(std::memory_order_relaxed);
  }

  // rx queue for the packet: reta[hash & (kRetaSize-1)].
  unsigned queue_for(const net::Packet& pkt) const {
    return queue_for_hash(rss_hash_of(pkt));
  }

  // Rewrites every RETA entry pointing at `q` round-robin over the remaining
  // queues (ethtool -X weight 0 analogue; the watchdog's re-steer). No-op
  // when q is the only queue left. Returns entries rewritten.
  std::size_t exclude_queue(unsigned q);
  bool excluded(unsigned q) const {
    return q < excluded_.size() && excluded_[q].load(std::memory_order_relaxed);
  }

  // Reverses exclude_queue when the watchdog's half-open probe sees the
  // queue heartbeating again: clears the exclusion and rewrites the WHOLE
  // table round-robin over the now-alive set, so the recovered queue gets
  // its fair share of entries back instead of staying starved forever.
  // Returns entries rewritten (0 if q wasn't excluded).
  std::size_t include_queue(unsigned q);

  // Point one RETA bucket at a queue (the adaptive rebalancer's write path).
  // Rejects excluded/out-of-range targets. Returns true when the entry
  // actually changed.
  bool set_entry(std::size_t index, unsigned q);

  // Snapshot of the indirection table (tests / status reporting).
  std::array<unsigned, kRetaSize> reta() const {
    std::array<unsigned, kRetaSize> out;
    for (std::size_t i = 0; i < kRetaSize; ++i) {
      out[i] = reta_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  unsigned queues_;
  std::array<std::atomic<unsigned>, kRetaSize> reta_;
  std::vector<std::atomic<bool>> excluded_;
};

}  // namespace linuxfp::engine
