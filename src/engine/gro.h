// Generic Receive Offload for the engine slow-path handoff (DESIGN.md §16).
//
// The slow-path thread pops raw segments from the MPSC ring one at a time;
// every segment pays the full linear stage walk (ip_rcv, fib_lookup, ...).
// GRO sits between the ring and rx_from_engine(): consecutive same-flow TCP
// segments are folded into one super-packet so the linear stages run once
// per burst, and dev_xmit resegments at TX (net::gso_segment) restoring the
// original wire bytes exactly. This mirrors the kernel's napi_gro_receive /
// GSO pairing — the observable packet stream is unchanged, only the cycles
// per wire packet drop.
//
// Coalescing rules (flush closes a held flow and emits its super-packet):
//   - fold only standard IPv4+TCP frames (ihl=5, data offset 5, not a
//     fragment, no SYN/FIN/RST, non-empty payload, no link padding); UDP
//     folding is opt-in (GroConfig::udp) for UDP-GRO style workloads.
//   - segments must be header-identical to the held super-packet except the
//     per-segment fields that resegmentation restores (IP total_len/id/
//     checksum; TCP seq/checksum or UDP length/checksum).
//   - TCP segments must arrive in-sequence; an out-of-order segment flushes
//     the held run and starts a new one (kernel GRO does the same).
//   - a held run flushes on: max_segs reached, flow-key or header mismatch,
//     out-of-order seq, table capacity, age (timeout_folds fold() calls) or
//     idle (the engine's slow loop finds its ring empty).
//   - any non-coalescable packet that shares a 5-tuple with a held run
//     flushes that run *before* being emitted, so per-flow packet order is
//     preserved end to end.
//
// Single-threaded: only the engine's slow-path thread calls into this class.
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace linuxfp::engine {

struct GroConfig {
  bool enabled = false;
  // Max wire segments folded into one super-packet (skb gso_segs cap).
  unsigned max_segs = 16;
  // A held run older than this many fold() calls is flushed even if the ring
  // stays busy — bounds the latency a coalesced segment can incur.
  std::uint64_t timeout_folds = 256;
  // Also fold UDP datagrams (UDP GRO analogue). Off by default: plain UDP
  // has no in-order contract, so only packet-spraying workloads want it.
  bool udp = false;
};

struct GroStats {
  std::uint64_t folds = 0;         // packets offered to fold()
  std::uint64_t coalesced = 0;     // segments merged into a held run
  std::uint64_t superpackets = 0;  // multi-segment packets emitted
  std::uint64_t bypassed = 0;      // packets emitted untouched
  std::uint64_t flush_idle = 0;
  std::uint64_t flush_timeout = 0;
  std::uint64_t flush_mismatch = 0;  // header delta or same-flow bypasser
  std::uint64_t flush_ooo = 0;
  std::uint64_t flush_max_segs = 0;
  std::uint64_t flush_capacity = 0;
};

class GroEngine {
 public:
  explicit GroEngine(const GroConfig& cfg) : cfg_(cfg) {}

  bool enabled() const { return cfg_.enabled; }

  // Offers one segment. Appends zero or more packets to `out` (flushed
  // super-packets and/or the segment itself when it bypasses); a coalesced
  // segment is absorbed and appends nothing.
  void fold(net::Packet&& pkt, std::vector<net::Packet>& out);

  // Flushes every held run (idle or shutdown).
  void flush_all(std::vector<net::Packet>& out);

  const GroStats& stats() const { return stats_; }
  std::size_t held() const { return held_.size(); }

 private:
  struct Entry {
    net::FlowKey key;
    net::Packet super;
    std::uint32_t next_seq = 0;  // TCP only
    std::uint64_t birth_fold = 0;
    bool tcp = true;
  };

  // What fold() learned about a segment. `coalescable` implies `has_key`.
  struct Classified {
    bool has_key = false;  // 5-tuple readable (order barrier applies)
    bool coalescable = false;
    net::FlowKey key;
    std::uint32_t seq = 0;
    std::uint16_t payload_off = 0;
    std::uint16_t payload_len = 0;
    bool tcp = true;
  };

  static constexpr std::size_t kMaxHeld = 8;  // per-NAPI GRO list size

  Classified classify(const net::Packet& pkt) const;
  // Emits held_[idx] (finalizing headers if multi-segment) and erases it.
  void flush_entry(std::size_t idx, std::vector<net::Packet>& out,
                   std::uint64_t& reason_counter);
  bool headers_match(const Entry& e, const net::Packet& pkt) const;

  GroConfig cfg_;
  GroStats stats_;
  std::vector<Entry> held_;
};

}  // namespace linuxfp::engine
