// Bounded lock-free ring (Vyukov's MPMC queue) used for the engine's
// rx queues (SPSC: classifier producer, one worker consumer) and for the
// kPass handoff ring (MPSC: every worker produces, the slow-path thread
// consumes).
//
// Each cell carries a sequence number; a producer claims a cell by CAS on
// the enqueue cursor and publishes it by storing seq = pos + 1 with release
// ordering, which is what makes the element contents visible to the consumer
// that observes the sequence (acquire). No locks, no unbounded allocation —
// this is what keeps the datapath TSan-clean without serializing queues.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace linuxfp::engine {

template <typename T>
class BoundedRing {
 public:
  // Capacity is rounded up to a power of two (cursor arithmetic masks).
  explicit BoundedRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::vector<Cell>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  BoundedRing(const BoundedRing&) = delete;
  BoundedRing& operator=(const BoundedRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // False when the ring is full (tail-drop point).
  bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                           static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  // False when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                           static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  // Racy snapshot — for occupancy stats only, never for control flow.
  std::size_t occupancy() const {
    std::size_t e = enqueue_pos_.load(std::memory_order_relaxed);
    std::size_t d = dequeue_pos_.load(std::memory_order_relaxed);
    return e >= d ? e - d : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace linuxfp::engine
