#include "engine/gro.h"

#include <cstring>

namespace linuxfp::engine {

namespace {

// Byte offsets (from frame start) that resegmentation restores per segment;
// everything else must match the held super-packet exactly for a fold.
bool is_masked_offset(std::size_t off, bool tcp) {
  constexpr std::size_t kIp = net::kEthHdrLen;
  constexpr std::size_t kL4 = net::kEthHdrLen + net::kIpv4HdrLen;
  if (off == kIp + 2 || off == kIp + 3) return true;    // IP total_len
  if (off == kIp + 4 || off == kIp + 5) return true;    // IP id
  if (off == kIp + 10 || off == kIp + 11) return true;  // IP checksum
  if (tcp) {
    if (off >= kL4 + 4 && off < kL4 + 8) return true;     // TCP seq
    if (off == kL4 + 16 || off == kL4 + 17) return true;  // TCP checksum
  } else {
    if (off == kL4 + 4 || off == kL4 + 5) return true;  // UDP length
    if (off == kL4 + 6 || off == kL4 + 7) return true;  // UDP checksum
  }
  return false;
}

}  // namespace

GroEngine::Classified GroEngine::classify(const net::Packet& pkt) const {
  Classified c;
  if (pkt.size() < net::kEthHdrLen + net::kIpv4HdrLen) return c;
  auto* base = const_cast<std::uint8_t*>(pkt.data());
  net::EthernetView eth(base);
  if (eth.ethertype() != net::kEtherTypeIpv4) return c;
  net::Ipv4View ip(base + net::kEthHdrLen);
  if (ip.version() != 4 || ip.ihl() != 5) return c;
  const std::uint8_t proto = ip.protocol();
  const bool tcp = proto == net::kIpProtoTcp;
  if (!tcp && proto != net::kIpProtoUdp) return c;
  // An offset-fragment has no L4 header; a first fragment (MF set) does, so
  // it still forms a key and acts as an ordering barrier — but fragments
  // never coalesce.
  const bool first_or_unfragmented = ip.frag_offset() == 0;
  const std::size_t l4_off = net::kEthHdrLen + net::kIpv4HdrLen;
  const std::size_t l4_len = tcp ? net::kTcpHdrLen : net::kUdpHdrLen;
  if (!first_or_unfragmented || pkt.size() < l4_off + l4_len) return c;
  c.has_key = true;
  c.tcp = tcp;
  c.key.src_ip = ip.src();
  c.key.dst_ip = ip.dst();
  c.key.proto = proto;
  c.key.src_port = net::load_be16(base + l4_off);
  c.key.dst_port = net::load_be16(base + l4_off + 2);
  if (ip.is_fragment()) return c;
  if (!tcp && !cfg_.udp) return c;
  // Link-layer padding (total_len < frame) would be lost on refold; require
  // the frame to be exactly the IP datagram.
  if (pkt.size() != net::kEthHdrLen + ip.total_len()) return c;
  std::size_t payload_off = l4_off + l4_len;
  if (tcp) {
    net::TcpView tcpv(base + l4_off);
    if ((base[l4_off + 12] >> 4) != 5) return c;  // options not handled
    if (tcpv.syn() || tcpv.fin() || tcpv.rst()) return c;
    c.seq = tcpv.seq();
  } else {
    net::UdpView udp(base + l4_off);
    if (udp.length() != ip.total_len() - net::kIpv4HdrLen) return c;
  }
  if (pkt.size() <= payload_off) return c;  // pure ACKs etc. bypass
  c.payload_off = static_cast<std::uint16_t>(payload_off);
  c.payload_len = static_cast<std::uint16_t>(pkt.size() - payload_off);
  c.coalescable = true;
  return c;
}

bool GroEngine::headers_match(const Entry& e, const net::Packet& pkt) const {
  const std::size_t l4_len = e.tcp ? net::kTcpHdrLen : net::kUdpHdrLen;
  const std::size_t hdr_len = net::kEthHdrLen + net::kIpv4HdrLen + l4_len;
  const std::uint8_t* a = e.super.data();
  const std::uint8_t* b = pkt.data();
  for (std::size_t i = 0; i < hdr_len; ++i) {
    if (a[i] != b[i] && !is_masked_offset(i, e.tcp)) return false;
  }
  return true;
}

void GroEngine::flush_entry(std::size_t idx, std::vector<net::Packet>& out,
                            std::uint64_t& reason_counter) {
  Entry& e = held_[idx];
  ++reason_counter;
  if (e.super.gro_segs.size() > 1) {
    // Finalize the super-packet headers: lengths cover the whole run, the
    // checksum matches, and per-segment fields live in gro_segs for
    // net::gso_segment to restore at TX.
    net::Ipv4View ip(e.super.data() + net::kEthHdrLen);
    ip.set_total_len(
        static_cast<std::uint16_t>(e.super.size() - net::kEthHdrLen));
    if (!e.tcp) {
      net::UdpView udp(e.super.data() + net::kEthHdrLen + net::kIpv4HdrLen);
      udp.set_length(static_cast<std::uint16_t>(
          e.super.size() - net::kEthHdrLen - net::kIpv4HdrLen));
    }
    ip.update_checksum();
    ++stats_.superpackets;
  } else {
    e.super.gro_segs.clear();  // single segment: emit the original untouched
  }
  out.push_back(std::move(e.super));
  held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void GroEngine::fold(net::Packet&& pkt, std::vector<net::Packet>& out) {
  ++stats_.folds;
  // Age out long-held runs first so a busy ring cannot starve a flow.
  for (std::size_t i = 0; i < held_.size();) {
    if (stats_.folds - held_[i].birth_fold >= cfg_.timeout_folds) {
      flush_entry(i, out, stats_.flush_timeout);
    } else {
      ++i;
    }
  }

  const Classified c = classify(pkt);
  if (!c.coalescable) {
    // Per-flow order barrier: a bypassing packet with the same 5-tuple as a
    // held run must not overtake it.
    if (c.has_key) {
      for (std::size_t i = 0; i < held_.size(); ++i) {
        if (held_[i].key == c.key) {
          flush_entry(i, out, stats_.flush_mismatch);
          break;
        }
      }
    }
    ++stats_.bypassed;
    out.push_back(std::move(pkt));
    return;
  }

  for (std::size_t i = 0; i < held_.size(); ++i) {
    Entry& e = held_[i];
    if (e.key != c.key) continue;
    const bool in_seq = !e.tcp || c.seq == e.next_seq;
    if (!in_seq || !headers_match(e, pkt)) {
      flush_entry(i, out, in_seq ? stats_.flush_mismatch : stats_.flush_ooo);
      break;  // fall through to start a fresh run with this segment
    }
    // Fold: append payload, record the per-segment restore fields.
    const std::uint8_t* base = pkt.data();
    net::Ipv4View ip(const_cast<std::uint8_t*>(base) + net::kEthHdrLen);
    const std::size_t l4_off = net::kEthHdrLen + net::kIpv4HdrLen;
    const std::size_t csum_off = e.tcp ? l4_off + 16 : l4_off + 6;
    const std::size_t old_size = e.super.size();
    e.super.resize_data(old_size + c.payload_len);
    std::memcpy(e.super.data() + old_size, base + c.payload_off,
                c.payload_len);
    e.super.gro_segs.push_back(net::GroSeg{
        c.payload_len, ip.id(), net::load_be16(base + csum_off)});
    if (e.tcp) e.next_seq += c.payload_len;
    ++stats_.coalesced;
    if (e.super.gro_segs.size() >= cfg_.max_segs) {
      flush_entry(i, out, stats_.flush_max_segs);
    }
    return;
  }

  // Start a new run. The first segment's restore fields are recorded too so
  // gso_segment can rebuild every segment uniformly.
  if (held_.size() >= kMaxHeld) {
    flush_entry(0, out, stats_.flush_capacity);
  }
  Entry e;
  e.key = c.key;
  e.tcp = c.tcp;
  e.next_seq = c.tcp ? c.seq + c.payload_len : 0;
  e.birth_fold = stats_.folds;
  e.super = std::move(pkt);
  {
    const std::uint8_t* base = e.super.data();
    net::Ipv4View ip(const_cast<std::uint8_t*>(base) + net::kEthHdrLen);
    const std::size_t l4_off = net::kEthHdrLen + net::kIpv4HdrLen;
    const std::size_t csum_off = e.tcp ? l4_off + 16 : l4_off + 6;
    e.super.gro_segs.push_back(net::GroSeg{
        c.payload_len, ip.id(), net::load_be16(base + csum_off)});
  }
  held_.push_back(std::move(e));
}

void GroEngine::flush_all(std::vector<net::Packet>& out) {
  while (!held_.empty()) flush_entry(0, out, stats_.flush_idle);
}

}  // namespace linuxfp::engine
