#include "engine/engine.h"

#include <chrono>
#include <string>

#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::engine {

Engine::Engine(kern::Kernel& kernel, int ifindex, EngineConfig cfg)
    : kernel_(kernel), ifindex_(ifindex), cfg_(cfg), rss_(cfg.queues) {
  LFP_CHECK_MSG(cfg_.queues >= 1, "engine needs at least one queue");
  LFP_CHECK_MSG(cfg_.napi_budget >= 1, "napi budget must be positive");
  queues_.reserve(cfg_.queues);
  for (unsigned q = 0; q < cfg_.queues; ++q) {
    queues_.push_back(std::make_unique<QueueState>(cfg_.queue_depth));
  }
  slow_ring_ = std::make_unique<BoundedRing<net::Packet>>(cfg_.slow_ring_depth);
  tx_ = std::make_unique<TxEngine>(kernel_, rss_, cfg_.tx, cfg_.queues);
  if (cfg_.gro.enabled) gro_ = std::make_unique<GroEngine>(cfg_.gro);
  if (cfg_.steering.any()) {
    steerer_ = std::make_unique<FlowSteerer>(
        rss_, cfg_.steering,
        [this](unsigned q) { return queues_[q]->ring.occupancy(); });
  }
}

Engine::~Engine() { stop(); }

void Engine::start() {
  LFP_CHECK_MSG(!started_, "engine started twice");
  started_ = true;
  kern::NetDevice* d = kernel_.dev(ifindex_);
  LFP_CHECK_MSG(d != nullptr, "engine: unknown ingress ifindex");
  prog_ = d->xdp_prog();
  // Route every physical transmit through the TX batcher for the run: the
  // slow-path thread is the only transmitter while the engine is live, so
  // the batcher's doorbell state stays single-writer.
  kernel_.set_tx_batcher(tx_.get());
  // Per-CPU execution state (VMs, stat shards) is allocated before any
  // worker exists, so the hot loops never allocate or lock.
  if (prog_) prog_->prepare_cpus(cfg_.queues);
  wd_last_hb_.assign(cfg_.queues, 0);
  wd_stale_.assign(cfg_.queues, 0);
  wd_alive_streak_.assign(cfg_.queues, 0);
  wd_dead_.assign(cfg_.queues, 0);
  live_workers_.store(cfg_.queues, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  workers_.reserve(cfg_.queues);
  for (unsigned q = 0; q < cfg_.queues; ++q) {
    workers_.emplace_back([this, q] { worker_main(q); });
  }
  slow_thread_ = std::thread([this] { slow_main(); });
}

void Engine::inject(net::Packet&& pkt) {
  // Hash once at the NIC boundary; the stashed hash rides along for the
  // worker-side flow cache (and any later consumer) to reuse.
  const std::uint32_t hash = rss_hash_cached(pkt);
  const unsigned q =
      steerer_ ? steerer_->pick_queue(hash) : rss_.queue_for_hash(hash);
  QueueState& qs = *queues_[q];
  std::size_t occ = qs.ring.occupancy();
  if (occ > qs.stats.max_occupancy) qs.stats.max_occupancy = occ;
  std::uint64_t spins = 0;
  for (;;) {
    if (qs.ring.try_push(std::move(pkt))) {
      ++qs.stats.enqueued;
      return;
    }
    if (!cfg_.backpressure) {
      // NIC tail-drop: the wire does not wait for a stalled ring.
      ++qs.stats.tail_drops;
      return;
    }
    // Bounded wait: a stuck worker must not wedge the producer forever — the
    // stall is counted (the watchdog's demand signal) and past the spin
    // budget the packet drops like a tail-drop.
    if (spins == 0) ++qs.stats.backpressure_stalls;
    if (++spins > cfg_.backpressure_spin_limit) {
      ++qs.stats.tail_drops;
      return;
    }
    std::this_thread::yield();
  }
}

void Engine::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  running_.store(false, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  slow_thread_.join();
  kernel_.set_tx_batcher(nullptr);
  reconcile();
}

void Engine::worker_main(unsigned q) {
  QueueState& qs = *queues_[q];
  net::Packet pkt;
  for (;;) {
    if (cfg_.worker_poll_hook) cfg_.worker_poll_hook(q);
    qs.heartbeat.fetch_add(1, std::memory_order_relaxed);
    unsigned n = 0;
    while (n < cfg_.napi_budget && qs.ring.try_pop(pkt)) {
      process_packet(q, std::move(pkt));
      // Per-packet beat: a worker mid-burst is alive, and a busy queue must
      // not read as stuck just because one NAPI poll outlasts the watchdog's
      // sampling cadence.
      qs.heartbeat.fetch_add(1, std::memory_order_relaxed);
      ++n;
    }
    if (n > 0) {
      ++qs.stats.polls;
      if (n == cfg_.napi_budget) ++qs.stats.bursts;
      continue;
    }
    if (!running_.load(std::memory_order_acquire)) {
      // The producer is done; everything it pushed is visible now. Drain the
      // stragglers and exit.
      while (qs.ring.try_pop(pkt)) {
        process_packet(q, std::move(pkt));
      }
      break;
    }
    std::this_thread::yield();
  }
  live_workers_.fetch_sub(1, std::memory_order_release);
}

void Engine::process_packet(unsigned q, net::Packet&& pkt) {
  QueueStats& st = queues_[q]->stats;
  const kern::CostModel& cost = kernel_.cost();
  const std::size_t size = pkt.size();
  ++st.processed;
  st.rx_bytes += size;
  pkt.rx_queue = q;
  pkt.ingress_ifindex = static_cast<std::uint32_t>(ifindex_);

  // The driver poll and the XDP run both happen on the RSS-steered CPU,
  // exactly as in Linux; their cycles are this queue's fast-path budget.
  std::uint64_t cycles =
      cost.driver_rx +
      static_cast<std::uint64_t>(cost.per_byte_rx * static_cast<double>(size));
  kern::PacketProgram::RunResult r;  // defaults to kPass when no program
  if (prog_) {
    r = prog_->run_on_cpu(pkt, ifindex_, q);
    cycles += r.cycles + cost.xdp_hook_overhead;
  }
  st.fast_cycles += cycles;

  switch (r.verdict) {
    case kern::PacketProgram::Verdict::kDrop:
      ++st.xdp_drop;
      return;
    case kern::PacketProgram::Verdict::kTx:
      ++st.xdp_tx;
      tx_enqueue(q, ifindex_, std::move(pkt));
      return;
    case kern::PacketProgram::Verdict::kRedirect:
      ++st.xdp_redirect;
      tx_enqueue(q, r.redirect_ifindex, std::move(pkt));
      return;
    case kern::PacketProgram::Verdict::kUserspace:
      ++st.to_userspace;
      return;
    case kern::PacketProgram::Verdict::kAborted:
      ++st.aborted;
      break;  // aborted packets continue to the stack, like the kernel
    case kern::PacketProgram::Verdict::kPass:
      ++st.xdp_pass;
      break;
  }

  // kPass / kAborted: hand over to the slow-path thread. The kernel's
  // single-writer state is never touched from this worker.
  std::uint64_t spins = 0;
  for (;;) {
    if (slow_ring_->try_push(std::move(pkt))) return;
    if (!cfg_.backpressure) {
      ++st.slow_handoff_drops;  // backlog overflow, netif_rx-style
      return;
    }
    if (spins == 0) ++st.handoff_stalls;
    if (++spins > cfg_.backpressure_spin_limit) {
      ++st.slow_handoff_drops;
      return;
    }
    // Waiting for slow-ring space is by-design liveness, not a stall: keep
    // beating so the watchdog doesn't declare this queue dead mid-handoff.
    queues_[q]->heartbeat.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

void Engine::tx_enqueue(unsigned q, int oif, net::Packet&& pkt) {
  QueueStats& st = queues_[q]->stats;
  // XPS: the TX queue comes from the cached RSS hash through the RETA, so a
  // flow's descriptors always land on the same ring regardless of which
  // worker carried the packet.
  const unsigned txq = tx_->select_queue(pkt);
  TxDesc d{oif, std::move(pkt)};
  std::uint64_t spins = 0;
  for (;;) {
    if (tx_->try_push(txq, std::move(d))) {
      ++st.tx_enqueued;
      return;
    }
    if (!cfg_.backpressure) {
      ++st.tx_drops;  // device ring overrun: the NIC would drop it too
      return;
    }
    if (spins == 0) ++st.tx_stalls;
    if (++spins > cfg_.backpressure_spin_limit) {
      ++st.tx_drops;
      return;
    }
    // Same liveness contract as the slow-ring handoff: waiting for the
    // drainer is not a stall, keep beating.
    queues_[q]->heartbeat.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

void Engine::watchdog_check() {
  for (unsigned q = 0; q < cfg_.queues; ++q) {
    if (wd_dead_[q]) {
      if (!cfg_.watchdog_recovery) continue;
      // Half-open probe (the guard's circuit-breaker close, DESIGN.md §13):
      // an excluded queue whose heartbeat advances across consecutive
      // samples is running again — re-include it and re-spread the RETA.
      std::uint64_t hb = queues_[q]->heartbeat.load(std::memory_order_relaxed);
      bool advanced = hb != wd_last_hb_[q];
      wd_last_hb_[q] = hb;
      if (!advanced) {
        wd_alive_streak_[q] = 0;
        continue;
      }
      if (++wd_alive_streak_[q] < cfg_.watchdog_recover_checks) continue;
      wd_dead_[q] = 0;
      wd_stale_[q] = 0;
      wd_alive_streak_[q] = 0;
      std::size_t rewritten = rss_.include_queue(q);
      watchdog_recoveries_.fetch_add(1, std::memory_order_relaxed);
      bool any_dead = false;
      for (unsigned i = 0; i < cfg_.queues; ++i) {
        if (wd_dead_[i]) any_dead = true;
      }
      // Same ordering contract as the trip: health flips last, so an
      // observer seeing healthy() again also sees the restored RETA.
      if (!any_dead) healthy_.store(true, std::memory_order_release);
      LFP_WARN("engine") << "watchdog: queue " << q << " recovered; re-spread "
                         << rewritten << " RETA entries";
      continue;
    }
    std::uint64_t hb = queues_[q]->heartbeat.load(std::memory_order_relaxed);
    // A stuck verdict requires work waiting (occupancy > 0) with a frozen
    // heartbeat: an idle worker keeps beating, a merely slow one advances
    // between samples. The fault point forces a false positive for tests.
    bool forced =
        util::FaultInjector::global().should_fail(util::kFaultEngineWatchdog);
    bool suspect = queues_[q]->ring.occupancy() > 0 && hb == wd_last_hb_[q];
    wd_last_hb_[q] = hb;
    if (!forced) {
      if (!suspect) {
        wd_stale_[q] = 0;
        continue;
      }
      if (++wd_stale_[q] < cfg_.watchdog_stall_checks) continue;
    }
    wd_dead_[q] = 1;
    std::size_t rewritten = rss_.exclude_queue(q);
    watchdog_resteers_.fetch_add(1, std::memory_order_relaxed);
    // Health flips last, with release ordering: an observer that sees
    // !healthy() is guaranteed to also see the completed RETA re-steer and
    // the bumped counter — the flip is the "trip complete" signal.
    healthy_.store(false, std::memory_order_release);
    LFP_WARN("engine") << "watchdog: queue " << q << " stuck"
                       << (forced ? " (injected)" : "") << "; re-steered "
                       << rewritten << " RETA entries";
  }
}

void Engine::slow_main() {
  net::Packet pkt;
  std::uint64_t ticks = 0;
  auto wd_last = std::chrono::steady_clock::now();
  std::vector<net::Packet> gro_out;
  // Accounting is segment-aware so a GRO super-packet is indistinguishable
  // from per-segment processing in every counter: processed scales by
  // gso_segs, and a dropped super adds the remaining segments to the same
  // drop reason the slow path charged once.
  auto handle = [this](net::Packet&& p) {
    const std::uint32_t segs = p.gso_segs();
    kern::CycleTrace trace;
    kern::RxSummary summary =
        kernel_.rx_from_engine(ifindex_, std::move(p), trace);
    slow_stats_.processed += segs;
    slow_stats_.cycles += trace.total();
    if (segs > 1 && summary.drop != kern::Drop::kNone &&
        summary.drop != kern::Drop::kNeighPending) {
      kernel_.note_extra_drops(summary.drop, segs - 1);
    }
  };
  auto pop_one = [this, &gro_out, &handle](net::Packet&& p) {
    if (gro_) {
      gro_out.clear();
      slow_stats_.cycles += kernel_.cost().gro_receive;
      gro_->fold(std::move(p), gro_out);
      for (net::Packet& out : gro_out) handle(std::move(out));
    } else {
      handle(std::move(p));
    }
  };
  for (;;) {
    if (cfg_.watchdog && ++ticks % cfg_.watchdog_check_interval == 0) {
      auto now = std::chrono::steady_clock::now();
      if (now - wd_last >=
          std::chrono::microseconds(cfg_.watchdog_sample_gap_us)) {
        wd_last = now;
        watchdog_check();
      }
    }
    // TX rings first: a full TX ring stalls every worker, and fast-path
    // egress should not queue behind the kPass funnel.
    std::size_t tx_moved = 0;
    for (unsigned q = 0; q < cfg_.queues; ++q) tx_moved += tx_->drain(q);
    if (slow_ring_->try_pop(pkt)) {
      pop_one(std::move(pkt));
      continue;
    }
    // Slow funnel idle: close the GRO window (napi_complete analogue) and
    // ring any doorbells deferred by inline slow-path transmits.
    if (gro_ && gro_->held() > 0) {
      gro_out.clear();
      gro_->flush_all(gro_out);
      for (net::Packet& out : gro_out) handle(std::move(out));
      continue;
    }
    (void)tx_->flush_doorbells();
    if (live_workers_.load(std::memory_order_acquire) == 0) {
      // Workers have exited; everything they pushed is visible. Drain the
      // funnel, close GRO, then empty the TX rings and ring the last
      // doorbells.
      while (slow_ring_->try_pop(pkt)) pop_one(std::move(pkt));
      if (gro_) {
        gro_out.clear();
        gro_->flush_all(gro_out);
        for (net::Packet& out : gro_out) handle(std::move(out));
      }
      while (true) {
        std::size_t moved = 0;
        for (unsigned q = 0; q < cfg_.queues; ++q) moved += tx_->drain(q);
        if (moved == 0) break;
      }
      (void)tx_->flush_doorbells();
      break;
    }
    if (tx_moved == 0) std::this_thread::yield();
  }
}

void Engine::reconcile() {
  util::MetricsRegistry& reg = kernel_.metrics();
  kern::KernelCounters& kc = kernel_.mutable_counters();
  kern::NetDevice* in_dev = kernel_.dev(ifindex_);
  util::Counter* xdp_drop_counter = reg.counter("drop.xdp_drop");

  for (unsigned q = 0; q < cfg_.queues; ++q) {
    const QueueStats& st = queues_[q]->stats;
    const std::string prefix = "engine.queue" + std::to_string(q) + ".";
    util::bump(reg.counter(prefix + "polls"), st.polls);
    util::bump(reg.counter(prefix + "bursts"), st.bursts);
    util::bump(reg.counter(prefix + "drops"),
               st.tail_drops + st.slow_handoff_drops + st.tx_drops);
    util::bump(reg.counter(prefix + "occupancy"), st.max_occupancy);
    util::bump(reg.counter(prefix + "processed"), st.processed);
    util::bump(reg.counter(prefix + "backpressure_stalls"),
               st.backpressure_stalls + st.handoff_stalls);

    kc.fast_path_packets +=
        st.xdp_drop + st.xdp_tx + st.xdp_redirect + st.to_userspace;
    if (st.xdp_drop > 0) {
      kc.drops[kern::Drop::kXdpDrop] += st.xdp_drop;
      util::bump(xdp_drop_counter, st.xdp_drop);
    }
    if (in_dev) {
      in_dev->stats().rx_packets += st.processed;
      in_dev->stats().rx_bytes += st.rx_bytes;
      in_dev->stats().rx_dropped += st.tail_drops + st.slow_handoff_drops;
    }
    // No DevStats TX credit here: fast-path egress now flows through the TX
    // rings into dev_xmit, which accounts tx_packets/tx_bytes identically
    // for fast- and slow-path transmits.
  }
  util::bump(reg.counter("engine.slow.processed"), slow_stats_.processed);
  util::bump(reg.counter("engine.slow.cycles"), slow_stats_.cycles);
  {
    std::uint64_t enq = 0, stalls = 0, drops = 0;
    for (const auto& q : queues_) {
      enq += q->stats.tx_enqueued;
      stalls += q->stats.tx_stalls;
      drops += q->stats.tx_drops;
    }
    std::uint64_t transmitted = 0, bytes = 0, bursts = 0, full = 0, bad = 0,
                   cycles = 0;
    for (unsigned q = 0; q < cfg_.queues; ++q) {
      const TxQueueStats& ts = tx_->queue_stats(q);
      transmitted += ts.transmitted;
      bytes += ts.tx_bytes;
      bursts += ts.bursts;
      full += ts.full_bursts;
      bad += ts.bad_redirect;
      cycles += ts.cycles;
    }
    util::bump(reg.counter("engine.tx.enqueued"), enq);
    util::bump(reg.counter("engine.tx.stalls"), stalls);
    util::bump(reg.counter("engine.tx.drops"), drops);
    util::bump(reg.counter("engine.tx.transmitted"), transmitted);
    util::bump(reg.counter("engine.tx.bytes"), bytes);
    util::bump(reg.counter("engine.tx.bursts"), bursts);
    util::bump(reg.counter("engine.tx.full_bursts"), full);
    util::bump(reg.counter("engine.tx.bad_redirect"), bad);
    util::bump(reg.counter("engine.tx.cycles"), cycles + tx_->flush_cycles());
    util::bump(reg.counter("engine.tx.descriptors"), tx_->descriptors());
    util::bump(reg.counter("engine.tx.doorbells"), tx_->doorbells());
  }
  if (gro_) {
    const GroStats& gs = gro_->stats();
    util::bump(reg.counter("engine.gro.folds"), gs.folds);
    util::bump(reg.counter("engine.gro.coalesced"), gs.coalesced);
    util::bump(reg.counter("engine.gro.superpackets"), gs.superpackets);
    util::bump(reg.counter("engine.gro.bypassed"), gs.bypassed);
    util::bump(reg.counter("engine.gro.flush_idle"), gs.flush_idle);
    util::bump(reg.counter("engine.gro.flush_timeout"), gs.flush_timeout);
    util::bump(reg.counter("engine.gro.flush_mismatch"), gs.flush_mismatch);
    util::bump(reg.counter("engine.gro.flush_ooo"), gs.flush_ooo);
    util::bump(reg.counter("engine.gro.flush_max_segs"), gs.flush_max_segs);
    util::bump(reg.counter("engine.gro.flush_capacity"), gs.flush_capacity);
  }
  util::bump(reg.counter("engine.watchdog.resteers"),
             watchdog_resteers_.load(std::memory_order_relaxed));
  util::bump(reg.counter("engine.watchdog.recoveries"),
             watchdog_recoveries_.load(std::memory_order_relaxed));
  if (steerer_) {
    const SteeringStats& ss = steerer_->stats();
    util::bump(reg.counter("engine.steering.decisions"), ss.decisions);
    util::bump(reg.counter("engine.steering.adapt_passes"), ss.adapt_passes);
    util::bump(reg.counter("engine.steering.rebalances"), ss.rebalances);
    util::bump(reg.counter("engine.steering.reta_rewrites"), ss.reta_rewrites);
    util::bump(reg.counter("engine.steering.rfs_hits"), ss.rfs_hits);
    util::bump(reg.counter("engine.steering.rfs_inserts"), ss.rfs_inserts);
    util::bump(reg.counter("engine.steering.rfs_migrations"),
               ss.rfs_migrations);
    util::bump(reg.counter("engine.steering.sprayed"), ss.sprayed);
    util::bump(reg.counter("engine.steering.spray_flows"), ss.spray_flows);
    util::bump(reg.counter("engine.steering.unspray_flows"),
               ss.unspray_flows);
  }
}

std::uint64_t Engine::total_processed() const {
  std::uint64_t n = 0;
  for (const auto& q : queues_) n += q->stats.processed;
  return n;
}

std::uint64_t Engine::total_tail_drops() const {
  std::uint64_t n = 0;
  for (const auto& q : queues_) {
    n += q->stats.tail_drops + q->stats.slow_handoff_drops;
  }
  return n;
}

std::uint64_t Engine::total_fast_verdicts() const {
  std::uint64_t n = 0;
  for (const auto& q : queues_) {
    const QueueStats& st = q->stats;
    n += st.xdp_drop + st.xdp_tx + st.xdp_redirect + st.to_userspace;
  }
  return n;
}

}  // namespace linuxfp::engine
