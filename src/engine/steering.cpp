#include "engine/steering.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace linuxfp::engine {

void SpaceSaving::add(std::uint32_t hash) {
  for (Item& it : items_) {
    if (it.hash == hash) {
      ++it.count;
      return;
    }
  }
  if (items_.size() < k_) {
    items_.push_back(Item{hash, 1, 0});
    return;
  }
  // Evict the minimum and inherit its count: the new item's true count is
  // somewhere in [1, min+1], so `err` records the inherited uncertainty.
  std::size_t min_i = 0;
  for (std::size_t i = 1; i < items_.size(); ++i) {
    if (items_[i].count < items_[min_i].count) min_i = i;
  }
  std::uint64_t floor = items_[min_i].count;
  items_[min_i] = Item{hash, floor + 1, floor};
}

void SpaceSaving::halve() {
  for (Item& it : items_) {
    it.count /= 2;
    it.err /= 2;
  }
  // Drop items decayed to nothing so the sketch refills with live flows.
  items_.erase(std::remove_if(items_.begin(), items_.end(),
                              [](const Item& it) { return it.count == 0; }),
               items_.end());
}

bool SpaceSaving::tracked(std::uint32_t hash) const {
  for (const Item& it : items_) {
    if (it.hash == hash) return true;
  }
  return false;
}

FlowSteerer::FlowSteerer(RssClassifier& rss, SteeringConfig cfg,
                         OccupancyFn occupancy)
    : rss_(rss),
      cfg_(cfg),
      occupancy_(std::move(occupancy)),
      topk_(cfg.topk),
      queue_load_(rss.queues(), 0) {
  LFP_CHECK_MSG(cfg_.interval >= 1, "steering interval must be positive");
  if (cfg_.rfs) {
    std::size_t n = cfg_.rfs_entries;
    LFP_CHECK_MSG(n >= 2 && (n & (n - 1)) == 0,
                  "rfs table size must be a power of two");
    rfs_.resize(n);
    rfs_mask_ = n - 1;
  }
}

double FlowSteerer::spray_threshold(unsigned alive) const {
  if (cfg_.spray_share > 0) return cfg_.spray_share;
  return 0.5 / static_cast<double>(alive == 0 ? 1 : alive);
}

bool FlowSteerer::sprayed(std::uint32_t hash) const {
  for (std::uint32_t h : spray_) {
    if (h == hash) return true;
  }
  return false;
}

unsigned FlowSteerer::rfs_queue(std::uint32_t hash) const {
  if (!cfg_.rfs) return kNoQueue;
  const RfsEntry& e = rfs_[hash & rfs_mask_];
  return (e.queue != kNoQueue && e.hash == hash) ? e.queue : kNoQueue;
}

unsigned FlowSteerer::spray_next() {
  unsigned n = rss_.queues();
  for (unsigned tries = 0; tries < n; ++tries) {
    unsigned q = spray_rr_++ % n;
    if (!rss_.excluded(q)) return q;
  }
  return rss_.queue_for_hash(0);  // every queue excluded: cannot happen
}

unsigned FlowSteerer::pick_queue(std::uint32_t hash) {
  ++stats_.decisions;
  if (cfg_.elephants) topk_.add(hash);

  unsigned q = kNoQueue;
  if (cfg_.elephants && sprayed(hash)) {
    q = spray_next();
    ++stats_.sprayed;
  } else {
    // Offered load of the RETA bucket this flow falls into: the balancer's
    // bucket weights. Sprayed traffic is excluded — it follows no bucket.
    ++bucket_load_[hash & (kRetaSize - 1)];
    if (cfg_.rfs) {
      const RfsEntry& e = rfs_[hash & rfs_mask_];
      if (e.queue != kNoQueue && e.hash == hash && e.queue < rss_.queues() &&
          !rss_.excluded(e.queue)) {
        q = e.queue;
        ++stats_.rfs_hits;
      }
    }
    if (q == kNoQueue) {
      q = rss_.queue_for_hash(hash);
      if (cfg_.rfs) {
        // Pin the flow to the queue whose CPU is about to own its microflow
        // cache entry and per-CPU map slots; later RETA rewrites won't move
        // it (only an explicit migration will).
        rfs_[hash & rfs_mask_] = RfsEntry{hash, q};
        ++stats_.rfs_inserts;
      }
    }
  }

  ++queue_load_[q];
  if (++interval_count_ >= cfg_.interval) adapt();
  return q;
}

void FlowSteerer::adapt() {
  ++stats_.adapt_passes;
  const unsigned queues = rss_.queues();
  const std::uint64_t interval_total =
      std::accumulate(queue_load_.begin(), queue_load_.end(), std::uint64_t{0});
  interval_count_ = 0;

  std::vector<unsigned> alive;
  alive.reserve(queues);
  for (unsigned q = 0; q < queues; ++q) {
    if (!rss_.excluded(q)) alive.push_back(q);
  }

  // Effective load: this interval's steered packets plus the live backlog
  // (a queue that is falling behind sheds load even if its share is fair).
  std::vector<double> load(queues, 0);
  double alive_total = 0;
  for (unsigned q = 0; q < queues; ++q) {
    load[q] = static_cast<double>(queue_load_[q]);
    if (occupancy_) load[q] += static_cast<double>(occupancy_(q));
    if (!rss_.excluded(q)) alive_total += load[q];
  }
  bool changed = false;

  if (interval_total > 0 && !alive.empty()) {
    double mean = alive_total / static_cast<double>(alive.size());
    unsigned hot = alive[0];
    for (unsigned q : alive) {
      if (load[q] > load[hot]) hot = q;
    }
    bool imbalanced =
        mean > 0 && load[hot] / mean > cfg_.imbalance_threshold;

    if (cfg_.elephants) {
      topk_window_ = topk_window_ / 2 + static_cast<double>(interval_total);
      double threshold = spray_threshold(static_cast<unsigned>(alive.size()));
      // Demote first: flows that decayed below half the spray threshold (or
      // fell out of the sketch entirely) return to normal affinity steering.
      for (std::size_t i = 0; i < spray_.size();) {
        double share = 0;
        for (const SpaceSaving::Item& it : topk_.items()) {
          if (it.hash == spray_[i]) {
            share = static_cast<double>(it.count) / topk_window_;
            break;
          }
        }
        if (share < threshold / 2 || alive.size() <= 1) {
          spray_[i] = spray_.back();
          spray_.pop_back();
          ++stats_.unspray_flows;
          changed = true;
        } else {
          ++i;
        }
      }
      // Promote: a flow bigger than any queue's fair share is split.
      if (alive.size() > 1) {
        for (const SpaceSaving::Item& it : topk_.items()) {
          double share = static_cast<double>(it.count) / topk_window_;
          if (share > threshold && !sprayed(it.hash)) {
            spray_.push_back(it.hash);
            ++stats_.spray_flows;
            changed = true;
          }
        }
      }
    }

    // Migrate pinned elephants off the hottest queue until the imbalance is
    // inside tolerance (RFS handoff: the flow re-records its microflow
    // cache entry on the target CPU; generations keep it exact).
    if (cfg_.rfs && imbalanced && alive.size() > 1) {
      std::vector<SpaceSaving::Item> hot_flows = topk_.items();
      std::sort(hot_flows.begin(), hot_flows.end(),
                [](const SpaceSaving::Item& a, const SpaceSaving::Item& b) {
                  return a.count > b.count;
                });
      for (const SpaceSaving::Item& it : hot_flows) {
        if (load[hot] / mean <= cfg_.imbalance_threshold) break;
        if (sprayed(it.hash)) continue;
        RfsEntry& e = rfs_[it.hash & rfs_mask_];
        if (e.hash != it.hash || e.queue != hot) continue;
        unsigned cold = alive[0];
        for (unsigned q : alive) {
          if (load[q] < load[cold]) cold = q;
        }
        if (cold == hot) break;
        // Estimate the flow's contribution this interval from its share of
        // the decayed window, clamped to what the hot queue actually saw.
        double moved = std::min(
            load[hot], static_cast<double>(it.count) / topk_window_ *
                           static_cast<double>(interval_total));
        e.queue = cold;
        load[hot] -= moved;
        load[cold] += moved;
        ++stats_.rfs_migrations;
        changed = true;
        for (unsigned q : alive) {
          if (load[q] > load[hot]) hot = q;
        }
      }
    }

    // Re-weight the RETA from measured bucket popularity: greedy
    // longest-processing-time packing of buckets onto the alive queues.
    // This is what new flows (and everything, when RFS is off) follow.
    if (cfg_.rebalance && imbalanced && alive.size() > 1) {
      std::array<std::uint16_t, kRetaSize> order;
      for (std::size_t i = 0; i < kRetaSize; ++i) {
        order[i] = static_cast<std::uint16_t>(i);
      }
      std::stable_sort(order.begin(), order.end(),
                       [this](std::uint16_t a, std::uint16_t b) {
                         return bucket_load_[a] > bucket_load_[b];
                       });
      std::vector<double> weight(alive.size(), 0);
      std::size_t rr = 0;
      for (std::uint16_t bucket : order) {
        std::size_t target;
        if (bucket_load_[bucket] == 0) {
          // Idle buckets round-robin so the table stays uniform for flows
          // the interval never saw.
          target = rr++ % alive.size();
        } else {
          target = 0;
          for (std::size_t i = 1; i < alive.size(); ++i) {
            if (weight[i] < weight[target]) target = i;
          }
          weight[target] += static_cast<double>(bucket_load_[bucket]);
        }
        if (rss_.set_entry(bucket, alive[target])) {
          ++stats_.reta_rewrites;
          changed = true;
        }
      }
    }
  }

  if (changed) ++stats_.rebalances;
  std::fill(queue_load_.begin(), queue_load_.end(), 0);
  bucket_load_.fill(0);
  if (cfg_.elephants) topk_.halve();
}

}  // namespace linuxfp::engine
