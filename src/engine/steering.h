// Adaptive flow steering (DESIGN.md §15): the software half of the Linux
// scaling toolbox (Documentation/networking/scaling.rst) layered over the
// NIC-style RSS classifier.
//
//   * RETA rebalancer — RPS-style re-weighting: instead of only rewriting
//     the 128-entry indirection table when the watchdog excludes a queue,
//     a periodic pass re-assigns RETA buckets to queues from the measured
//     per-bucket packet counts plus live ring occupancy (greedy
//     longest-processing-time packing), so skewed bucket popularity stops
//     collapsing onto one worker.
//   * RFS flow affinity — a small steering table keyed by rss_hash pins each
//     flow to the queue (CPU) that first processed it, which is exactly the
//     CPU that owns its microflow-cache entry and per-CPU map slots. A RETA
//     rewrite therefore never silently migrates an established flow away
//     from its warm state; only an explicit migration (below) moves it.
//   * Elephant detection — a space-saving top-k sketch over rss_hash finds
//     heavy hitters. A flow too big for any single queue (share above the
//     spray threshold) is *split*: its packets round-robin over the alive
//     queues. Smaller elephants pinned to the hottest queue are *migrated*:
//     their RFS entry is retargeted at the least-loaded queue.
//
// Correctness: steering decides only WHERE a packet is processed. Verdicts
// are queue-partition invariant (per-CPU VMs share maps' aggregate
// semantics; the N-vs-1 equivalence suite proves it), and the microflow
// cache is per-CPU exact-match with generation-vector validation, so a
// migrated or sprayed flow simply re-records on its new CPU — a one-miss
// warmup, never a stale verdict. No flow-epoch bump is required for a
// handoff; the epoch continues to guard program redeploys only.
//
// Threading: the steerer is owned by the engine's single producer thread
// (inject side). All of its state — RFS table, sketch, interval loads — is
// plain memory touched by that thread alone. The only shared structure it
// writes is the RETA itself, whose entries are relaxed atomics also written
// by the slow-path thread's watchdog (exclude/include); entry-granular
// last-writer-wins is safe because a momentarily stale entry only steers a
// packet to a suboptimal (still valid) queue.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "engine/rss.h"

namespace linuxfp::engine {

struct SteeringConfig {
  bool rebalance = false;  // periodic occupancy-driven RETA re-weighting
  bool rfs = false;        // flow->queue affinity table (cache-preserving)
  bool elephants = false;  // top-k detector + hot-flow spray/migration
  // Packets between adaptation passes (the "jiffies" of the rebalancer).
  unsigned interval = 4096;
  // Affinity table size; power of two. Collisions overwrite (it is a cache
  // of steering decisions, not ground truth).
  std::size_t rfs_entries = 4096;
  // Space-saving sketch width: how many heavy hitters are tracked exactly.
  unsigned topk = 16;
  // max-queue-load / mean-queue-load ratio above which a pass rewrites the
  // RETA and migrates flows. Below it the pass only decays its counters.
  double imbalance_threshold = 1.15;
  // A flow whose traffic share exceeds this is sprayed over all queues
  // (one queue could never serve it without becoming the bottleneck).
  // 0 = auto: half the fair per-queue share, 0.5 / alive_queues.
  double spray_share = 0.0;

  bool any() const { return rebalance || rfs || elephants; }

  // Everything on: the configuration the Zipf-recovery bench and the
  // adaptive-steering scenario options use.
  static SteeringConfig adaptive() {
    SteeringConfig cfg;
    cfg.rebalance = cfg.rfs = cfg.elephants = true;
    return cfg;
  }
};

// Producer-thread-written; read after the engine quiesces (reconcile) or
// from the producer thread itself (tests).
struct SteeringStats {
  std::uint64_t decisions = 0;       // pick_queue calls
  std::uint64_t adapt_passes = 0;    // periodic passes that ran
  std::uint64_t rebalances = 0;      // passes that changed steering state
  std::uint64_t reta_rewrites = 0;   // RETA entries rewritten by the balancer
  std::uint64_t rfs_hits = 0;        // packets steered by flow affinity
  std::uint64_t rfs_inserts = 0;     // new flow pins
  std::uint64_t rfs_migrations = 0;  // pins retargeted off a hot queue
  std::uint64_t sprayed = 0;         // packets split across queues
  std::uint64_t spray_flows = 0;     // flows promoted to spray
  std::uint64_t unspray_flows = 0;   // flows demoted back to affinity
};

// Bounded heavy-hitter sketch (Metwally's space-saving): at most k tracked
// hashes; an untracked arrival evicts the minimum-count item and inherits
// its count as the new item's error bound. Counts overestimate by at most
// `err`, which is exactly the conservative direction for elephant
// detection.
class SpaceSaving {
 public:
  struct Item {
    std::uint32_t hash = 0;
    std::uint64_t count = 0;
    std::uint64_t err = 0;
  };

  explicit SpaceSaving(unsigned k) : k_(k == 0 ? 1 : k) { items_.reserve(k_); }

  void add(std::uint32_t hash);
  // Exponential decay between adaptation intervals so the sketch tracks the
  // current traffic mix, not all of history.
  void halve();
  bool tracked(std::uint32_t hash) const;
  const std::vector<Item>& items() const { return items_; }

 private:
  unsigned k_;
  std::vector<Item> items_;
};

// The per-engine steering brain. One instance, owned by the producer.
class FlowSteerer {
 public:
  static constexpr unsigned kNoQueue = ~0u;

  // `occupancy` (optional) reports a queue's live rx-ring backlog; the
  // rebalancer folds it into the load estimate so a queue that is merely
  // behind (not just popular) sheds buckets first.
  using OccupancyFn = std::function<std::size_t(unsigned queue)>;

  FlowSteerer(RssClassifier& rss, SteeringConfig cfg,
              OccupancyFn occupancy = {});

  // The full steering decision for one packet: spray set, then RFS
  // affinity, then RETA; runs the periodic adaptation pass in-line every
  // cfg.interval packets.
  unsigned pick_queue(std::uint32_t hash);

  // Forces an adaptation pass now (tests; normally periodic).
  void adapt();

  const SteeringStats& stats() const { return stats_; }
  const SteeringConfig& config() const { return cfg_; }

  // Introspection for tests / status.
  bool sprayed(std::uint32_t hash) const;
  // Current affinity pin for the flow, or kNoQueue when none.
  unsigned rfs_queue(std::uint32_t hash) const;

 private:
  struct RfsEntry {
    std::uint32_t hash = 0;
    unsigned queue = kNoQueue;  // kNoQueue = empty slot
  };

  unsigned spray_next();
  double spray_threshold(unsigned alive) const;

  RssClassifier& rss_;
  SteeringConfig cfg_;
  OccupancyFn occupancy_;

  std::vector<RfsEntry> rfs_;
  std::size_t rfs_mask_ = 0;
  std::vector<std::uint32_t> spray_;  // hashes currently split over queues
  unsigned spray_rr_ = 0;

  SpaceSaving topk_;
  // Decayed denominator for top-k share estimates (matches topk_.halve()).
  double topk_window_ = 0;

  // Interval accumulators, reset every adapt() pass.
  std::vector<std::uint64_t> queue_load_;
  std::array<std::uint64_t, kRetaSize> bucket_load_{};
  std::uint64_t interval_count_ = 0;

  SteeringStats stats_;
};

}  // namespace linuxfp::engine
