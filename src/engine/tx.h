// The engine's transmit half (DESIGN.md §16): per-CPU TX rings with
// xmit_more-style doorbell coalescing and XPS queue selection.
//
// Fast-path verdicts that leave the box (XDP_TX, XDP_REDIRECT) used to be
// accounted and forgotten on the worker; now the worker posts a TxDesc to a
// TX ring and the slow-path thread drains the rings in bursts, pushing every
// packet through the one true egress path (Kernel::dev_xmit) — DevStats, TC
// egress, shadow capture and GSO resegmentation all see fast-path traffic
// exactly like slow-path traffic.
//
// Queue selection (XPS): the TX queue is keyed off the packet's cached
// Toeplitz hash through the same RETA that steered it on RX, so a flow's TX
// queue is stable and affine to its RX CPU — descriptors from one flow never
// ping-pong between rings.
//
// Doorbell coalescing (skb->xmit_more): TxEngine implements kern::TxBatcher.
// While installed on the kernel, every physical transmit charges only the
// descriptor write per packet; the doorbell MMIO is deferred and rung once
// per burst (config.burst descriptors, or at the end of a drain round / on
// idle, whichever comes first). burst=1 degenerates to the classic
// one-doorbell-per-packet driver and is the "unbatched" leg of the
// forwarding benchmark. Packets are always delivered to the device
// immediately and in order — only the *cost* of the doorbell moves.
//
// Threading: workers produce onto the MPMC rings (a worker may select any TX
// queue); ONLY the slow-path thread drains, transmits, and touches
// TxQueueStats / doorbell state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/ring.h"
#include "engine/rss.h"
#include "kernel/kernel.h"

namespace linuxfp::engine {

struct TxConfig {
  // xmit_more window: descriptors posted between doorbells. 1 = ring the
  // doorbell for every packet (pre-batching driver behaviour).
  unsigned burst = 64;
  std::size_t ring_depth = 1024;  // per TX queue
};

// One queued transmit: the egress ifindex the verdict named plus the packet.
struct TxDesc {
  int oif = 0;
  net::Packet pkt;
};

// Consumer-side per-queue stats; written only by the slow-path thread.
struct TxQueueStats {
  std::uint64_t transmitted = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t bursts = 0;       // drain rounds that moved >= 1 descriptor
  std::uint64_t full_bursts = 0;  // rounds that moved the full burst
  std::uint64_t bad_redirect = 0;  // oif named no device (counted as
                                   // drop.no_device by dev_xmit, audited here)
  std::uint64_t cycles = 0;  // descriptor + doorbell + egress-path cycles
};

class TxEngine : public kern::TxBatcher {
 public:
  TxEngine(kern::Kernel& kernel, const RssClassifier& rss, TxConfig cfg,
           unsigned nqueues);

  const TxConfig& config() const { return cfg_; }
  unsigned queues() const { return static_cast<unsigned>(rings_.size()); }

  // --- producer side (engine workers) ---------------------------------------
  // XPS: stable TX queue from the cached RSS hash (computes it on the rare
  // uncached path).
  unsigned select_queue(net::Packet& pkt) const {
    return rss_.queue_for_hash(rss_hash_cached(pkt));
  }
  bool try_push(unsigned txq, TxDesc&& d) {
    return rings_[txq]->try_push(std::move(d));
  }

  // --- consumer side (slow-path thread only) --------------------------------
  // Pops up to config().burst descriptors from queue `txq`, transmits each
  // through dev_xmit, and rings any deferred doorbells at the end of the
  // round. Returns the number of descriptors moved.
  std::size_t drain(unsigned txq);
  // Rings every deferred doorbell (idle / shutdown). Returns cycles charged;
  // the caller attributes them to its own budget.
  std::uint64_t flush_doorbells();
  bool all_empty() const;

  // kern::TxBatcher: dev_xmit calls this for every physical transmit while
  // the batcher is installed (both TX-ring drains and inline slow-path
  // transmits land here).
  void post_descriptor(kern::NetDevice& dev, std::size_t bytes,
                       kern::CycleTrace& trace) override;

  // Final after the engine stopped (or between drains on the slow thread).
  const TxQueueStats& queue_stats(unsigned q) const { return *stats_[q]; }
  std::uint64_t descriptors() const { return descriptors_; }
  std::uint64_t doorbells() const { return doorbells_; }
  std::uint64_t flush_cycles() const { return flush_cycles_; }

 private:
  // Rings every pending doorbell; returns the cycles to charge.
  std::uint64_t ring_all();

  kern::Kernel& kernel_;
  const RssClassifier& rss_;
  TxConfig cfg_;
  std::vector<std::unique_ptr<BoundedRing<TxDesc>>> rings_;
  // unique_ptr so each queue's stats block can be cache-line separated.
  struct alignas(64) StatsBlock : TxQueueStats {};
  std::vector<std::unique_ptr<StatsBlock>> stats_;

  // Doorbell state (slow-path thread only): descriptors posted per device
  // since its doorbell last rang.
  std::map<int, unsigned> pending_;
  std::uint64_t descriptors_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t flush_cycles_ = 0;  // doorbells rung outside a drain round
};

}  // namespace linuxfp::engine
