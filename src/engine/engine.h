// The parallel datapath engine: a software model of the Linux
// RSS -> per-queue NAPI -> backlog pipeline that the paper's multi-core
// throughput results assume (§VI "Pktgen varies source ports so RSS spreads
// flows over cores").
//
// Topology of one engine run:
//
//   inject() ──RSS──> rx ring 0 ──> worker 0 ┐  XDP verdicts counted locally
//             (reta)  rx ring 1 ──> worker 1 ├──MPSC──> slow-path thread
//                     ...                    ┘  (kPass/kAborted funnel)
//
// Threading discipline (DESIGN.md §11):
//  * Each worker owns one rx ring and one per-CPU VM (PacketProgram::
//    run_on_cpu); it only reads kernel tables through helpers and only
//    writes its own cache-line-padded stat shard and per-CPU map slots.
//  * ALL kernel-state mutation — the stack, ARP, conntrack, dev_xmit — runs
//    on the single slow-path thread, preserving the kernel's single-writer
//    discipline; workers hand kPass packets over the bounded MPSC ring.
//  * The producer (inject caller) classifies and enqueues; on a full ring it
//    tail-drops (counted, like netif_rx backlog drops) or, in backpressure
//    mode, waits — which makes N-queue runs exactly packet-preserving for
//    the equivalence test.
//  * Shared counters (MetricsRegistry, per-CPU maps) are relaxed atomics or
//    per-CPU slots; everything else is reconciled into KernelCounters /
//    DevStats / the registry at stop(), after every thread has joined.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "engine/gro.h"
#include "engine/ring.h"
#include "engine/rss.h"
#include "engine/steering.h"
#include "engine/tx.h"
#include "kernel/kernel.h"

namespace linuxfp::engine {

struct EngineConfig {
  unsigned queues = 1;
  std::size_t queue_depth = 512;   // per rx ring
  unsigned napi_budget = 64;       // packets per worker poll
  std::size_t slow_ring_depth = 1024;
  // true: inject() waits for ring space instead of tail-dropping, making
  // runs deterministic in their counters (equivalence tests). false models
  // real NIC tail-drop under overload.
  bool backpressure = false;
  // Backpressure waits are bounded: after this many yields the packet drops
  // (counted in tail_drops / slow_handoff_drops) instead of wedging the
  // producer or a worker behind a stuck thread forever. The generous default
  // keeps equivalence runs lossless while still guaranteeing progress.
  std::uint64_t backpressure_spin_limit = 1'000'000;
  // Worker watchdog: the slow-path thread samples per-queue heartbeats every
  // `watchdog_check_interval` loop iterations; a queue with packets waiting
  // whose heartbeat froze across `watchdog_stall_checks` consecutive samples
  // is declared stuck — engine health flips and the RETA re-steers new flows
  // away from the dead queue.
  bool watchdog = false;
  unsigned watchdog_stall_checks = 3;
  unsigned watchdog_check_interval = 4096;
  // Half-open recovery (mirrors the guard's circuit-breaker close): a queue
  // the watchdog excluded is re-included — RETA re-spread to uniform via
  // include_queue — after its heartbeat advances across
  // `watchdog_recover_checks` consecutive samples. Off by default: existing
  // callers (and tests) treat exclusion as final.
  bool watchdog_recovery = false;
  unsigned watchdog_recover_checks = 2;
  // Wall-clock floor between watchdog samples. The tick interval alone is
  // not enough on an oversubscribed host: an idle slow thread burns
  // `watchdog_check_interval` iterations in microseconds — far less than a
  // scheduling quantum — so a worker that is merely descheduled (not stuck)
  // can look frozen across every sample. A genuinely blocked worker stays
  // frozen across any real-time gap; a runnable one gets CPU within it.
  std::uint64_t watchdog_sample_gap_us = 3000;
  // Test hook: runs at the top of every worker poll iteration, before the
  // heartbeat bump, so tests can stall a worker deterministically.
  std::function<void(unsigned q)> worker_poll_hook;
  // Adaptive steering (steering.h): RETA rebalancing, RFS flow affinity,
  // elephant spray/migration. All off by default — inject() then steers by
  // the static RETA exactly as before.
  SteeringConfig steering;
  // TX engine (tx.h): per-CPU TX rings + xmit_more doorbell coalescing.
  // Always on — fast-path kTx/kRedirect verdicts transmit through dev_xmit
  // via the rings; tx.burst=1 models the per-packet-doorbell driver.
  TxConfig tx;
  // GRO (gro.h): slow-path segment coalescing ahead of rx_from_engine. Off
  // by default.
  GroConfig gro;
};

// Per-queue statistics, split by writer so no field is written from two
// threads: the producer fills the enqueue side, the worker the poll side.
struct QueueStats {
  // producer-written
  std::uint64_t enqueued = 0;
  std::uint64_t tail_drops = 0;
  std::uint64_t max_occupancy = 0;
  std::uint64_t backpressure_stalls = 0;  // inject() had to wait for space
  // worker-written
  std::uint64_t polls = 0;       // poll rounds that moved >= 1 packet
  std::uint64_t bursts = 0;      // polls that used the full NAPI budget
  std::uint64_t processed = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t xdp_drop = 0;
  std::uint64_t xdp_tx = 0;
  std::uint64_t xdp_redirect = 0;
  std::uint64_t xdp_pass = 0;
  std::uint64_t to_userspace = 0;
  std::uint64_t aborted = 0;
  std::uint64_t slow_handoff_drops = 0;  // slow ring full (throughput mode)
  std::uint64_t handoff_stalls = 0;      // worker had to wait for slow ring
  std::uint64_t fast_cycles = 0;  // driver + XDP cycles charged on this CPU
  // TX-ring handoff (kTx/kRedirect verdicts posted to the XPS-selected ring)
  std::uint64_t tx_enqueued = 0;
  std::uint64_t tx_stalls = 0;  // worker had to wait for TX-ring space
  std::uint64_t tx_drops = 0;   // TX ring full (throughput mode)
};

struct SlowPathStats {
  std::uint64_t processed = 0;
  std::uint64_t cycles = 0;  // slow-path stage cycles (post-handoff)
};

// One engine drives one ingress device of one kernel. Lifecycle:
//   Engine e(kernel, ifindex, cfg);
//   e.start();               // spawns workers + slow-path thread
//   e.inject(pkt); ...       // single producer thread
//   e.stop();                // drains, joins, reconciles counters
// After stop(), per-queue stats are final and mirrored into the kernel's
// registry as engine.queue<i>.{polls,bursts,drops,occupancy} (satellite of
// status_json / prometheus_status).
class Engine {
 public:
  Engine(kern::Kernel& kernel, int ifindex, EngineConfig cfg);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  void start();
  // Producer-side: classify by RSS and enqueue. Only valid between start()
  // and stop(), from one thread.
  void inject(net::Packet&& pkt);
  // Signals end of traffic, drains every ring, joins all threads and
  // reconciles per-queue shards into KernelCounters, DevStats and the
  // metrics registry. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const EngineConfig& config() const { return cfg_; }
  const RssClassifier& rss() const { return rss_; }

  // False once the watchdog declared any worker stuck. Live-readable;
  // acquire pairs with the watchdog's release store, so !healthy() implies
  // the RETA re-steer and resteer counter are fully visible.
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }
  std::uint64_t watchdog_resteers() const {
    return watchdog_resteers_.load(std::memory_order_relaxed);
  }
  std::uint64_t watchdog_recoveries() const {
    return watchdog_recoveries_.load(std::memory_order_relaxed);
  }

  // Null unless cfg.steering enables something. Producer-owned; read its
  // stats after stop() (or from the producer thread).
  const FlowSteerer* steerer() const { return steerer_.get(); }

  // The TX subsystem (never null after construction) and the GRO stage
  // (null unless cfg.gro.enabled). Their stats are final after stop().
  const TxEngine& tx() const { return *tx_; }
  const GroEngine* gro() const { return gro_.get(); }

  // Final after stop().
  const QueueStats& queue_stats(unsigned q) const { return queues_[q]->stats; }
  const SlowPathStats& slow_stats() const { return slow_stats_; }

  // Totals over queues (final after stop()).
  std::uint64_t total_processed() const;
  std::uint64_t total_tail_drops() const;
  std::uint64_t total_fast_verdicts() const;  // drop+tx+redirect+userspace

 private:
  struct QueueState {
    explicit QueueState(std::size_t depth) : ring(depth) {}
    BoundedRing<net::Packet> ring;
    // Bumped once per worker poll iteration (busy or idle); a frozen value
    // with packets waiting is the watchdog's stuck signal.
    std::atomic<std::uint64_t> heartbeat{0};
    // Padded so adjacent queues' stats never share a cache line.
    alignas(64) QueueStats stats;
  };

  void worker_main(unsigned q);
  void slow_main();
  void process_packet(unsigned q, net::Packet&& pkt);
  void tx_enqueue(unsigned q, int oif, net::Packet&& pkt);
  void watchdog_check();
  void reconcile();

  kern::Kernel& kernel_;
  int ifindex_;
  EngineConfig cfg_;
  RssClassifier rss_;
  std::unique_ptr<FlowSteerer> steerer_;  // producer-thread state, may be null
  kern::PacketProgram* prog_ = nullptr;  // XDP program at start(), may be null

  std::vector<std::unique_ptr<QueueState>> queues_;
  std::unique_ptr<BoundedRing<net::Packet>> slow_ring_;
  std::unique_ptr<TxEngine> tx_;
  std::unique_ptr<GroEngine> gro_;  // slow-thread state, null when disabled
  SlowPathStats slow_stats_;

  std::vector<std::thread> workers_;
  std::thread slow_thread_;
  std::atomic<bool> running_{false};
  std::atomic<unsigned> live_workers_{0};
  bool started_ = false;
  bool stopped_ = false;

  // Watchdog state: atomics are live-readable from outside; the per-queue
  // sampling bookkeeping belongs to the slow-path thread alone.
  std::atomic<bool> healthy_{true};
  std::atomic<std::uint64_t> watchdog_resteers_{0};
  std::atomic<std::uint64_t> watchdog_recoveries_{0};
  std::vector<std::uint64_t> wd_last_hb_;
  std::vector<unsigned> wd_stale_;
  std::vector<unsigned> wd_alive_streak_;  // half-open probe progress
  std::vector<char> wd_dead_;
};

}  // namespace linuxfp::engine
