// Topology Manager: derives relationships between LinuxFP objects and emits
// the per-device processing graph as JSON (paper §IV-C2, Fig 3).
//
// Graph shape (one graph per attachable device):
//   {
//     "device": "ens1f0", "ifindex": 2, "hook": "xdp",
//     "nodes": {
//       "bridge": {"conf": {...}, "next_nf": "router"},
//       "filter": {"conf": {...}, "next_nf": "router"},
//       "router": {"conf": {...}}
//     }
//   }
// Keys of "nodes" are FPMs in processing order; "conf" sub-keys specialize
// the synthesized code (e.g. VLAN parsing only when the bridge filters
// VLANs); "next_nf" records the processing dependency.
#pragma once

#include <string>
#include <vector>

#include "core/objects.h"
#include "util/json.h"

namespace linuxfp::core {

struct TopologyOptions {
  // Which devices receive a fast path.
  bool attach_physical = true;
  bool attach_bridge_ports = false;  // veth/phys ports (TC container mode)
  bool attach_overlay = false;       // vxlan VTEP devices (decap ingress)
  std::string hook = "xdp";          // "xdp" or "tc"
};

class TopologyManager {
 public:
  explicit TopologyManager(TopologyOptions options = {})
      : options_(std::move(options)) {}

  // Builds the graphs for every attachable device. Returns a JSON array.
  util::Json build(const WorldView& view) const;

  // Stable signature for change detection: the controller re-synthesizes
  // only when this changes.
  static std::string signature(const util::Json& graphs) {
    return graphs.dump();
  }

 private:
  util::Json build_for_device(const WorldView& view,
                              const LinkObject& link) const;

  TopologyOptions options_;
};

}  // namespace linuxfp::core
