#include "core/introspect.h"

#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::core {

namespace {

LinkObject link_from_attrs(const util::Json& a) {
  LinkObject l;
  l.ifindex = static_cast<int>(a.at("ifindex").as_int());
  l.ifname = a.at("ifname").as_string();
  l.kind = a.at("kind").as_string();
  l.mac = a.at("mac").as_string();
  l.up = a.at("up").as_bool();
  l.mtu = static_cast<std::uint32_t>(a.at("mtu").as_int(1500));
  l.master = static_cast<int>(a.at("master").as_int());
  l.stp = a.at("stp").as_bool();
  l.vlan_filtering = a.at("vlan_filtering").as_bool();
  l.vni = static_cast<std::uint32_t>(a.at("vni").as_int());
  for (std::size_t i = 0; i < a.at("addrs").size(); ++i) {
    l.addrs.push_back(a.at("addrs").at(i).as_string());
  }
  for (std::size_t i = 0; i < a.at("ports").size(); ++i) {
    const util::Json& pj = a.at("ports").at(i);
    PortObject p;
    p.ifindex = static_cast<int>(pj.at("ifindex").as_int());
    p.ifname = pj.at("ifname").as_string();
    p.stp_state = pj.at("state").as_string();
    p.pvid = static_cast<std::uint16_t>(pj.at("pvid").as_int(1));
    l.ports.push_back(p);
  }
  return l;
}

}  // namespace

ServiceIntrospection::ServiceIntrospection(nl::Bus& bus) : bus_(bus) {
  socket_ = bus_.open_socket();
  socket_->join(nl::Group::kLink);
  socket_->join(nl::Group::kAddr);
  socket_->join(nl::Group::kRoute);
  socket_->join(nl::Group::kNeigh);
  socket_->join(nl::Group::kNetfilter);
  socket_->join(nl::Group::kSysctl);
  socket_->join(nl::Group::kIpvs);
}

bool ServiceIntrospection::dump_ok() {
  if (util::FaultInjector::global().should_fail(util::kFaultNetlinkDump)) {
    ++dump_failures_;
    return false;
  }
  return true;
}

void ServiceIntrospection::initial_sync() {
  view_ = WorldView{};
  if (dump_ok()) {
    for (const nl::Message& m : bus_.dump(nl::DumpKind::kLinks)) {
      apply_link(m.attrs, false);
    }
  }
  refresh_routes();
  refresh_rules();
  refresh_sets();
  refresh_neighbors();
  refresh_services();
  if (dump_ok()) {
    for (const nl::Message& m : bus_.dump(nl::DumpKind::kSysctls)) {
      view_.sysctls[m.attrs.at("key").as_string()] =
          static_cast<int>(m.attrs.at("value").as_int());
    }
  }
}

bool ServiceIntrospection::poll() {
  bool changed = false;
  nl::Message msg;
  while (socket_->receive(msg)) {
    ++events_;
    changed = apply(msg) || changed;
  }
  return changed;
}

bool ServiceIntrospection::apply(const nl::Message& msg) {
  switch (msg.type) {
    case nl::MsgType::kNewLink:
    case nl::MsgType::kDelLink:
      // Partial link events (e.g. brctl stp) re-dump links for simplicity;
      // full events carry an ifindex.
      if (msg.attrs.contains("ifindex")) {
        apply_link(msg.attrs, msg.type == nl::MsgType::kDelLink);
      } else if (dump_ok()) {
        view_.links.clear();
        for (const nl::Message& m : bus_.dump(nl::DumpKind::kLinks)) {
          apply_link(m.attrs, false);
        }
      }
      return true;
    case nl::MsgType::kNewAddr:
    case nl::MsgType::kDelAddr: {
      // Addresses live inside link objects: refresh the owning link.
      if (dump_ok()) {
        view_.links.clear();
        for (const nl::Message& m : bus_.dump(nl::DumpKind::kLinks)) {
          apply_link(m.attrs, false);
        }
      }
      return true;
    }
    case nl::MsgType::kNewRoute:
    case nl::MsgType::kDelRoute:
      refresh_routes();
      return true;
    case nl::MsgType::kNewNeigh:
    case nl::MsgType::kDelNeigh: {
      // Dynamic (learned) neighbour churn does not change the fast path:
      // helpers read the live table. Only static entries matter.
      bool dynamic = msg.attrs.at("dynamic").as_bool(true);
      refresh_neighbors();
      return !dynamic;
    }
    case nl::MsgType::kNewRule:
    case nl::MsgType::kDelRule:
      refresh_rules();
      return true;
    case nl::MsgType::kNewSet:
    case nl::MsgType::kDelSet:
      refresh_sets();
      return true;
    case nl::MsgType::kSysctl:
      view_.sysctls[msg.attrs.at("key").as_string()] =
          static_cast<int>(msg.attrs.at("value").as_int());
      return true;
    case nl::MsgType::kNewService:
    case nl::MsgType::kDelService:
      refresh_services();
      return true;
  }
  return false;
}

void ServiceIntrospection::apply_link(const util::Json& attrs, bool deleted) {
  if (deleted) {
    view_.links.erase(static_cast<int>(attrs.at("ifindex").as_int()));
    return;
  }
  LinkObject l = link_from_attrs(attrs);
  view_.links[l.ifindex] = std::move(l);
}

void ServiceIntrospection::refresh_routes() {
  if (!dump_ok()) return;
  view_.routes.clear();
  for (const nl::Message& m : bus_.dump(nl::DumpKind::kRoutes)) {
    RouteObject r;
    r.dst = m.attrs.at("dst").as_string();
    r.gateway = m.attrs.at("gateway").as_string();
    r.oif = static_cast<int>(m.attrs.at("oif").as_int());
    r.dev = m.attrs.at("dev").as_string();
    r.scope = m.attrs.at("scope").as_string();
    r.metric = static_cast<std::uint32_t>(m.attrs.at("metric").as_int());
    view_.routes.push_back(std::move(r));
  }
}

void ServiceIntrospection::refresh_rules() {
  if (!dump_ok()) return;
  view_.chains.clear();
  for (const nl::Message& m : bus_.dump(nl::DumpKind::kRules)) {
    ChainObject c;
    c.name = m.attrs.at("chain").as_string();
    c.builtin = m.attrs.at("builtin").as_bool();
    c.policy = m.attrs.at("policy").as_string();
    for (std::size_t i = 0; i < m.attrs.at("rules").size(); ++i) {
      c.rules.push_back(RuleObject{m.attrs.at("rules").at(i)});
    }
    view_.chains[c.name] = std::move(c);
  }
}

void ServiceIntrospection::refresh_sets() {
  if (!dump_ok()) return;
  view_.sets.clear();
  for (const nl::Message& m : bus_.dump(nl::DumpKind::kSets)) {
    SetObject s;
    s.name = m.attrs.at("set").as_string();
    s.type = m.attrs.at("type").as_string();
    s.size = static_cast<std::size_t>(m.attrs.at("size").as_int());
    view_.sets[s.name] = std::move(s);
  }
}

void ServiceIntrospection::refresh_neighbors() {
  if (!dump_ok()) return;
  view_.neighbors.clear();
  for (const nl::Message& m : bus_.dump(nl::DumpKind::kNeighbors)) {
    NeighObject n;
    n.ip = m.attrs.at("ip").as_string();
    n.mac = m.attrs.at("mac").as_string();
    n.dev = m.attrs.at("dev").as_string();
    n.state = m.attrs.at("state").as_string();
    n.dynamic = m.attrs.at("dynamic").as_bool(true);
    view_.neighbors.push_back(std::move(n));
  }
}

void ServiceIntrospection::refresh_services() {
  if (!dump_ok()) return;
  view_.services.clear();
  for (const nl::Message& m : bus_.dump(nl::DumpKind::kServices)) {
    ServiceObject svc;
    svc.vip = m.attrs.at("vip").as_string();
    svc.port = static_cast<int>(m.attrs.at("port").as_int());
    svc.proto = static_cast<int>(m.attrs.at("proto").as_int());
    svc.scheduler = m.attrs.at("scheduler").as_string();
    svc.backend_count = m.attrs.at("backends").size();
    view_.services.push_back(std::move(svc));
  }
}

}  // namespace linuxfp::core
