// Capability Manager: ensures the system supports the fast path being built
// (paper §V) by checking each FPM's required helpers against the helper set
// the target kernel exposes. Unsupportable nodes are pruned from the graph —
// e.g. on a mainline kernel without the paper's bpf_fdb_lookup patch, bridge
// FPMs are not synthesized and bridging stays on the slow path.
#pragma once

#include <string>
#include <vector>

#include "ebpf/program.h"
#include "util/json.h"

namespace linuxfp::core {

class CapabilityManager {
 public:
  explicit CapabilityManager(const ebpf::HelperRegistry& helpers)
      : helpers_(helpers) {}

  // Helpers an FPM requires.
  static std::vector<std::uint32_t> required_helpers(const std::string& fpm);

  bool supports(const std::string& fpm) const;

  // Returns a copy of `graphs` with unsupported nodes removed (and dangling
  // next_nf references fixed up). Names of dropped nodes are appended to
  // `dropped` when provided.
  util::Json prune(const util::Json& graphs,
                   std::vector<std::string>* dropped = nullptr) const;

 private:
  const ebpf::HelperRegistry& helpers_;
};

}  // namespace linuxfp::core
