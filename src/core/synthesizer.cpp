#include "core/synthesizer.h"

#include "ebpf/builder.h"
#include "ebpf/kernel_helpers.h"

namespace linuxfp::core {

namespace {

ebpf::HookType hook_from_text(const std::string& text) {
  if (text == "tc") return ebpf::HookType::kTcIngress;
  return ebpf::HookType::kXdp;
}

std::string device_mac_for_l3(const util::Json& graph) {
  // Router-only graphs punt frames not addressed to the device; when a
  // bridge node precedes the router, the bridge MAC is checked instead.
  const util::Json& nodes = graph.at("nodes");
  if (nodes.contains("bridge")) {
    return nodes.at("bridge").at("conf").at("bridge_mac").as_string();
  }
  return graph.at("dev_mac").as_string();
}

}  // namespace

util::Result<SynthesisResult> Synthesizer::synthesize(
    const util::Json& graph, std::uint32_t tail_call_base) const {
  SynthesisResult out;
  out.device = graph.at("device").as_string();
  out.ifindex = static_cast<int>(graph.at("ifindex").as_int());
  out.hook = hook_from_text(graph.at("hook").as_string());
  for (const auto& [name, node] : graph.at("nodes").object_items()) {
    out.fpms.push_back(name);
  }
  if (out.fpms.empty()) {
    return util::Error::make("synth.empty", "graph has no nodes");
  }
  out.tail_call_base = tail_call_base;

  if (mode_ == ChainMode::kInlineCalls) {
    auto prog = synthesize_inline(graph);
    if (!prog.ok()) return prog.error();
    out.programs.push_back(std::move(prog).take());
    return out;
  }
  auto st = synthesize_tailcalls(graph, tail_call_base, out);
  if (!st.ok()) return st.error();
  return out;
}

util::Result<ebpf::Program> Synthesizer::synthesize_inline(
    const util::Json& graph) const {
  const util::Json& nodes = graph.at("nodes");
  ebpf::HookType hook = hook_from_text(graph.at("hook").as_string());
  ebpf::ProgramBuilder b("lfp_" + graph.at("device").as_string(), hook);

  bool has_bridge = nodes.contains("bridge");
  bool has_router = nodes.contains("router");
  bool has_filter = nodes.contains("filter");
  bool has_ct_gate = nodes.contains("conntrack");
  bool has_lb = nodes.contains("loadbalance");

  FpmLibrary::emit_prologue(b, /*punt_multicast=*/true);
  if (custom_) custom_(b);
  if (has_ct_gate) FpmLibrary::emit_conntrack_gate(b);
  if (has_lb) {
    FpmLibrary::emit_loadbalance(b, nodes.at("loadbalance").at("conf"));
  }
  if (has_bridge) {
    FpmLibrary::emit_bridge(b, nodes.at("bridge").at("conf"), has_router);
  }
  if (has_router) {
    FpmLibrary::emit_l3(
        b, has_filter ? nodes.at("filter").at("conf") : util::Json(nullptr),
        nodes.at("router").at("conf"), device_mac_for_l3(graph),
        /*skip_mac_check=*/has_bridge);
  } else if (!has_bridge && !has_ct_gate) {
    return util::Error::make("synth.nodes", "unsupported node combination");
  }
  // A graph ending without a router (bridge-only, ct-gate-only) falls
  // through into the shared "punt" label: unhandled traffic goes to Linux.
  FpmLibrary::emit_epilogue(b);
  return b.build();
}

util::Status Synthesizer::synthesize_tailcalls(const util::Json& graph,
                                               std::uint32_t base,
                                               SynthesisResult& out) const {
  const util::Json& nodes = graph.at("nodes");
  ebpf::HookType hook = hook_from_text(graph.at("hook").as_string());
  const std::string device = graph.at("device").as_string();

  bool has_bridge = nodes.contains("bridge");
  bool has_router = nodes.contains("router");
  bool has_filter = nodes.contains("filter");
  bool has_lb = nodes.contains("loadbalance");

  // Chain layout: [bridge] -> [loadbalance] -> [filter] -> [router], each
  // its own program. Dispatcher prog-array index of the i-th chain program
  // is base + i.
  std::vector<std::string> chain;
  if (has_bridge) chain.push_back("bridge");
  if (has_lb) chain.push_back("loadbalance");
  if (has_filter) chain.push_back("filter");
  if (has_router) chain.push_back("router");
  if (chain.empty()) {
    return util::Error::make("synth.empty", "graph has no nodes");
  }

  for (std::size_t i = 0; i < chain.size(); ++i) {
    bool last = i + 1 == chain.size();
    std::uint32_t next_index = base + static_cast<std::uint32_t>(i) + 1;
    ebpf::ProgramBuilder b("lfp_" + device + "_" + chain[i], hook);
    FpmLibrary::emit_prologue(b, /*punt_multicast=*/true);
    if (i == 0 && custom_) custom_(b);

    auto emit_next = [&](ebpf::ProgramBuilder& bb) {
      if (last) {
        bb.ja("punt");
        return;
      }
      bb.mov_reg(ebpf::kR1, ebpf::kR6);
      bb.mov(ebpf::kR2, 0);  // dispatcher prog array is always map id 0
      bb.mov(ebpf::kR3, next_index);
      bb.call(ebpf::kHelperTailCall);
      bb.ja("punt");  // tail-call miss: degrade to the slow path
    };

    if (chain[i] == "bridge") {
      // In tail-call mode the bridge cannot fall through to the router
      // inline; frames to the bridge MAC tail-call the next program.
      FpmLibrary::emit_bridge(b, nodes.at("bridge").at("conf"),
                              /*has_l3_next=*/!last);
      if (!last) {
        b.label("l3_entry");
        emit_next(b);
      }
    } else if (chain[i] == "loadbalance") {
      FpmLibrary::emit_loadbalance(b, nodes.at("loadbalance").at("conf"));
      emit_next(b);
    } else if (chain[i] == "filter") {
      // Standalone filter: runs before routing, so output-interface rules
      // cannot be evaluated here — punt everything if any exist (slow path
      // stays correct; paper: unsupported constructs stay on the slow path).
      const util::Json& fconf = nodes.at("filter").at("conf");
      if (fconf.at("has_out_if").as_bool()) {
        b.ja("punt");
      } else {
        FpmLibrary::emit_filter_only(b, fconf);
        emit_next(b);
      }
    } else {  // router
      FpmLibrary::emit_l3(b, util::Json(nullptr),
                          nodes.at("router").at("conf"),
                          device_mac_for_l3(graph),
                          /*skip_mac_check=*/has_bridge);
    }

    FpmLibrary::emit_epilogue(b);
    auto prog = b.build();
    if (!prog.ok()) return prog.error();
    out.programs.push_back(std::move(prog).take());
  }
  return {};
}

}  // namespace linuxfp::core
