// Operator-facing status report (what a `linuxfpctl show` CLI prints):
// the introspected world view, the current processing graphs, per-attachment
// fast-path statistics, and the controller health record. Pure formatting
// over controller state.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/json.h"

namespace linuxfp::core {

class Controller;

// Controller health record: degraded-mode state plus failure accounting for
// the deploy pipeline. A deploy failure never leaves the datapath without a
// working program — the affected device falls back to the bare slow path —
// but it does flip `degraded` until a retry succeeds, so operators (and
// tests) can observe that acceleration is withdrawn.
struct HealthStatus {
  bool degraded = false;
  // Consecutive failed deploy reactions; drives exponential backoff.
  std::uint32_t consecutive_failures = 0;
  std::uint64_t deploy_attempts = 0;   // reactions that reached the deployer
  std::uint64_t deploy_failures = 0;   // reactions with >= 1 failed device
  std::uint64_t device_rollbacks = 0;  // per-device transactions rolled back
  std::uint64_t retries_scheduled = 0;
  std::uint64_t recoveries = 0;        // degraded -> healthy transitions
  std::uint64_t introspection_errors = 0;  // failed netlink dump reads
  std::uint64_t next_retry_ns = 0;     // 0 = no retry pending
  // Monotonic sim-clock stamps of the newest degrade/recovery transition
  // (deploy failure or guard quarantine / deploy recovery or breaker close);
  // 0 until the first such event.
  std::uint64_t last_degraded_ns = 0;
  std::uint64_t last_recovered_ns = 0;
  // Equivalence-guard (core/guard.h) counters; all zero when disabled.
  std::uint64_t guard_divergences = 0;
  std::uint64_t guard_quarantines = 0;
  std::uint64_t guard_promotions = 0;        // canary -> active
  std::uint64_t guard_canary_rejections = 0;
  std::uint64_t guard_half_open_probes = 0;
  std::uint64_t guard_recoveries = 0;        // breaker closes
  std::uint64_t guard_compares = 0;
  std::uint64_t guard_sampled = 0;
  std::uint32_t guard_units = 0;
  std::uint32_t guard_units_open = 0;        // not serving the fast path
  std::string last_error;              // "code: message" of the newest failure
  // Failure counts keyed by error code; injected faults use "fault.<point>",
  // so this doubles as the per-injection-point failure counter table.
  std::map<std::string, std::uint64_t> failures_by_code;
};

util::Json health_json(const HealthStatus& health);

// Multi-line human-readable report.
std::string format_status(Controller& controller);

// Machine-readable variant (JSON) for tooling. Includes a "datapath"
// section (kernel packet/drop counters) and a "metrics" section (the full
// observability registry: per-stage slow-path counters, per-FPM fast-path
// counters, helper calls, map hits/misses, FIB depth, histograms).
util::Json status_json(Controller& controller);

// Prometheus-style text exposition of the same state: every registry
// counter/histogram plus the health gauges, suitable for a scrape endpoint.
std::string prometheus_status(Controller& controller);

}  // namespace linuxfp::core
