// Operator-facing status report (what a `linuxfpctl show` CLI prints):
// the introspected world view, the current processing graphs, and per-
// attachment fast-path statistics. Pure formatting over controller state.
#pragma once

#include <string>

#include "core/controller.h"

namespace linuxfp::core {

// Multi-line human-readable report.
std::string format_status(Controller& controller);

// Machine-readable variant (JSON) for tooling.
util::Json status_json(Controller& controller);

}  // namespace linuxfp::core
