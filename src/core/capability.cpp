#include "core/capability.h"

#include "ebpf/kernel_helpers.h"

namespace linuxfp::core {

std::vector<std::uint32_t> CapabilityManager::required_helpers(
    const std::string& fpm) {
  if (fpm == "bridge") {
    return {ebpf::kHelperFdbLookup, ebpf::kHelperRedirect};
  }
  if (fpm == "router") {
    return {ebpf::kHelperFibLookup, ebpf::kHelperRedirect};
  }
  if (fpm == "filter") {
    return {ebpf::kHelperIptLookup};
  }
  if (fpm == "conntrack" || fpm == "loadbalance") {
    return {ebpf::kHelperCtLookup};
  }
  return {};
}

bool CapabilityManager::supports(const std::string& fpm) const {
  for (std::uint32_t id : required_helpers(fpm)) {
    if (!helpers_.supports(id)) return false;
  }
  return true;
}

util::Json CapabilityManager::prune(const util::Json& graphs,
                                    std::vector<std::string>* dropped) const {
  util::Json out = util::Json::array();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const util::Json& graph = graphs.at(i);
    util::Json pruned = util::Json::object();
    pruned["device"] = graph.at("device");
    pruned["ifindex"] = graph.at("ifindex");
    pruned["hook"] = graph.at("hook");
    pruned["dev_mac"] = graph.at("dev_mac");
    const util::Json& in_nodes = graph.at("nodes");
    const std::string device = graph.at("device").as_string();
    bool has_bridge = in_nodes.contains("bridge");
    bool has_filter = in_nodes.contains("filter");
    bool has_router = in_nodes.contains("router");
    bool has_lb = in_nodes.contains("loadbalance");

    bool keep_bridge = has_bridge && supports("bridge");
    bool keep_filter = has_filter && supports("filter");
    bool keep_lb = has_lb && supports("loadbalance");
    // Correctness over speed: if filtering (or ipvs NAT) is configured but
    // its FPM cannot be synthesized, the router FPM must not be deployed
    // either — a routing-only fast path would bypass iptables / forward
    // un-NATed VIP traffic. The whole L3 pipeline stays on the
    // (always-correct) slow path.
    bool keep_router = has_router && supports("router") &&
                       (!has_filter || keep_filter) && (!has_lb || keep_lb);
    if (!keep_router) {
      keep_filter = false;
      keep_lb = false;
    }

    auto report = [&](const char* name) {
      if (dropped) dropped->push_back(device + ":" + name);
    };
    if (has_bridge && !keep_bridge) report("bridge");
    if (has_lb && !keep_lb) report("loadbalance");
    if (has_filter && !keep_filter) report("filter");
    if (has_router && !keep_router) report("router");

    util::Json nodes = util::Json::object();
    if (keep_bridge) {
      if (keep_router) {
        nodes["bridge"] = in_nodes.at("bridge");
      } else {
        // Strip a dangling next_nf reference.
        util::Json bridge = util::Json::object();
        bridge["conf"] = in_nodes.at("bridge").at("conf");
        nodes["bridge"] = bridge;
      }
    }
    if (keep_lb) nodes["loadbalance"] = in_nodes.at("loadbalance");
    if (keep_filter) nodes["filter"] = in_nodes.at("filter");
    if (keep_router) nodes["router"] = in_nodes.at("router");
    if (nodes.size() > 0) {
      pruned["nodes"] = nodes;
      out.push_back(pruned);
    }
  }
  return out;
}

}  // namespace linuxfp::core
