#include "core/status.h"

#include <sstream>

#include "core/controller.h"
#include "ebpf/loader.h"
#include "util/fault.h"

namespace linuxfp::core {

namespace {
ebpf::HookType hook_of(const util::Json& graph) {
  return graph.at("hook").as_string() == "tc" ? ebpf::HookType::kTcIngress
                                              : ebpf::HookType::kXdp;
}
}  // namespace

util::Json health_json(const HealthStatus& health) {
  util::Json h = util::Json::object();
  h["degraded"] = health.degraded;
  h["consecutive_failures"] =
      static_cast<std::int64_t>(health.consecutive_failures);
  h["deploy_attempts"] = static_cast<std::int64_t>(health.deploy_attempts);
  h["deploy_failures"] = static_cast<std::int64_t>(health.deploy_failures);
  h["device_rollbacks"] = static_cast<std::int64_t>(health.device_rollbacks);
  h["retries_scheduled"] = static_cast<std::int64_t>(health.retries_scheduled);
  h["recoveries"] = static_cast<std::int64_t>(health.recoveries);
  h["introspection_errors"] =
      static_cast<std::int64_t>(health.introspection_errors);
  h["next_retry_ns"] = static_cast<std::int64_t>(health.next_retry_ns);
  h["last_degraded_ns"] = static_cast<std::int64_t>(health.last_degraded_ns);
  h["last_recovered_ns"] =
      static_cast<std::int64_t>(health.last_recovered_ns);
  h["last_error"] = health.last_error;
  util::Json by_code = util::Json::object();
  for (const auto& [code, count] : health.failures_by_code) {
    by_code[code] = static_cast<std::int64_t>(count);
  }
  h["failures_by_code"] = by_code;
  return h;
}

util::Json status_json(Controller& controller) {
  util::Json out = util::Json::object();

  const WorldView& view = controller.view();
  util::Json world = util::Json::object();
  world["links"] = static_cast<std::int64_t>(view.links.size());
  world["routes"] = static_cast<std::int64_t>(view.routes.size());
  world["forward_rules"] =
      static_cast<std::int64_t>(view.forward_rule_count());
  world["ipsets"] = static_cast<std::int64_t>(view.sets.size());
  world["services"] = static_cast<std::int64_t>(view.services.size());
  world["ip_forward"] = view.ip_forward();
  out["world"] = world;

  out["graphs"] = controller.current_graphs();
  out["resyntheses"] = static_cast<std::int64_t>(controller.resynth_count());

  util::Json attachments = util::Json::array();
  for (std::size_t i = 0; i < controller.current_graphs().size(); ++i) {
    const util::Json& graph = controller.current_graphs().at(i);
    const std::string device = graph.at("device").as_string();
    ebpf::Attachment* att =
        controller.deployer().attachment(device, hook_of(graph));
    if (!att) continue;
    util::Json a = util::Json::object();
    a["device"] = device;
    a["hook"] = graph.at("hook");
    a["programs_loaded"] = static_cast<std::int64_t>(att->programs().size());
    a["active_program"] =
        att->programs().empty()
            ? util::Json(nullptr)
            : util::Json(att->programs()[att->active_prog_id()].name);
    a["active_insns"] = static_cast<std::int64_t>(
        att->programs().empty()
            ? 0
            : att->programs()[att->active_prog_id()].size());
    const ebpf::AttachmentStats& s = att->stats();
    util::Json stats = util::Json::object();
    stats["runs"] = static_cast<std::int64_t>(s.runs);
    stats["pass"] = static_cast<std::int64_t>(s.pass);
    stats["drop"] = static_cast<std::int64_t>(s.drop);
    stats["redirect"] = static_cast<std::int64_t>(s.redirect);
    stats["to_userspace"] = static_cast<std::int64_t>(s.to_userspace);
    stats["aborted"] = static_cast<std::int64_t>(s.aborted);
    a["stats"] = stats;
    attachments.push_back(a);
  }
  out["attachments"] = attachments;

  const kern::Kernel& kernel = controller.kernel();
  const kern::KernelCounters& kc = kernel.counters();
  util::Json datapath = util::Json::object();
  datapath["slow_path_packets"] = kc.slow_path_packets;
  datapath["fast_path_packets"] = kc.fast_path_packets;
  datapath["forwarded"] = kc.forwarded;
  datapath["bridged"] = kc.bridged;
  datapath["locally_delivered"] = kc.locally_delivered;
  datapath["total_drops"] = kc.total_drops();
  util::Json drops = util::Json::object();
  for (const auto& [reason, count] : kc.drops) {
    drops[kern::drop_name(reason)] = count;
  }
  datapath["drops"] = drops;
  out["datapath"] = datapath;

  // Parallel engine observability: per-queue counters reconciled at
  // Engine::stop() (engine.queue<i>.polls/bursts/drops/occupancy/processed
  // plus the slow-path funnel totals). Grouped here for operators; the raw
  // counters also flow through "metrics" and prometheus_status.
  util::Json metrics = kernel.metrics().to_json();
  util::Json engine = util::Json::object();
  util::Json queues = util::Json::array();
  for (int q = 0;; ++q) {
    const std::string prefix = "engine.queue" + std::to_string(q) + ".";
    const util::Json& counters = metrics.at("counters");
    if (!counters.object_items().contains(prefix + "processed")) break;
    util::Json qj = util::Json::object();
    qj["queue"] = static_cast<std::int64_t>(q);
    for (const char* name : {"polls", "bursts", "drops", "occupancy",
                             "processed"}) {
      qj[name] = counters.at(prefix + name);
    }
    queues.push_back(qj);
  }
  if (queues.size() > 0) {
    engine["queues"] = queues;
    engine["slow_processed"] = kernel.metrics().value("engine.slow.processed");
    engine["slow_cycles"] = kernel.metrics().value("engine.slow.cycles");
    // Adaptive steering counters (DESIGN.md §15), reconciled the same way;
    // present only when a steering-enabled engine ran against this kernel.
    const util::Json& counters = metrics.at("counters");
    if (counters.object_items().contains("engine.steering.decisions")) {
      util::Json steering = util::Json::object();
      for (const char* name :
           {"decisions", "adapt_passes", "rebalances", "reta_rewrites",
            "rfs_hits", "rfs_inserts", "rfs_migrations", "sprayed",
            "spray_flows", "unspray_flows"}) {
        steering[name] = counters.at(std::string("engine.steering.") + name);
      }
      engine["steering"] = steering;
    }
    // TX subsystem (DESIGN.md §16): ring/doorbell totals reconciled at
    // Engine::stop(); present whenever an engine ran (TX rings are always
    // on).
    if (counters.object_items().contains("engine.tx.descriptors")) {
      util::Json tx = util::Json::object();
      for (const char* name :
           {"enqueued", "stalls", "drops", "transmitted", "bytes", "bursts",
            "full_bursts", "bad_redirect", "cycles", "descriptors",
            "doorbells"}) {
        tx[name] = counters.at(std::string("engine.tx.") + name);
      }
      engine["tx"] = tx;
    }
    // GRO stage (DESIGN.md §16); present only when a GRO-enabled engine ran.
    if (counters.object_items().contains("engine.gro.folds")) {
      util::Json gro = util::Json::object();
      for (const char* name :
           {"folds", "coalesced", "superpackets", "bypassed", "flush_idle",
            "flush_timeout", "flush_mismatch", "flush_ooo", "flush_max_segs",
            "flush_capacity"}) {
        gro[name] = counters.at(std::string("engine.gro.") + name);
      }
      engine["gro"] = gro;
    }
    out["engine"] = engine;
  }
  out["metrics"] = metrics;

  // Microflow verdict cache (DESIGN.md §12): summed over every attachment's
  // per-CPU caches. Only present when at least one attachment has the cache
  // enabled; the raw flowcache.* counters also flow through "metrics".
  if (controller.deployer().flow_cache_enabled()) {
    const engine::FlowCacheStats fs = controller.deployer().flow_cache_stats();
    util::Json fc = util::Json::object();
    fc["hits"] = static_cast<std::int64_t>(fs.hits);
    fc["misses"] = static_cast<std::int64_t>(fs.misses);
    fc["invalidations"] = static_cast<std::int64_t>(fs.invalidations);
    fc["evictions"] = static_cast<std::int64_t>(fs.evictions);
    fc["uncacheable"] = static_cast<std::int64_t>(fs.uncacheable);
    fc["replay_mismatch"] = static_cast<std::int64_t>(fs.replay_mismatch);
    std::uint64_t lookups = fs.hits + fs.misses;
    fc["hit_rate"] = lookups == 0
                         ? 0.0
                         : static_cast<double>(fs.hits) /
                               static_cast<double>(lookups);
    out["flowcache"] = fc;
  }

  // Direct-threaded execution engine (DESIGN.md §14), present only when the
  // deployer runs the translator: translation census plus runtime fallback
  // totals (the per-attachment jit.* counters also flow through "metrics").
  if (controller.deployer().exec_engine() == ebpf::ExecEngine::kJit) {
    const Deployer::JitSummary js = controller.deployer().jit_summary();
    util::Json jj = util::Json::object();
    jj["engine"] = ebpf::exec_engine_name(controller.deployer().exec_engine());
    jj["translated"] = static_cast<std::int64_t>(js.translated);
    jj["untranslatable"] = static_cast<std::int64_t>(js.untranslatable);
    jj["runs"] = static_cast<std::int64_t>(js.runs);
    jj["fallbacks"] = static_cast<std::int64_t>(js.fallbacks);
    out["jit"] = jj;
  }

  out["health"] = health_json(controller.health());

  // Equivalence-guard breaker state (DESIGN.md §13), present only when the
  // guard is enabled: per-unit mode plus aggregate comparison counters.
  if (EquivalenceGuard* guard = controller.guard()) {
    util::Json gj = util::Json::object();
    util::Json units = util::Json::array();
    for (GuardUnit* u : guard->units()) {
      const GuardUnitStats s = u->stats();
      util::Json uj = util::Json::object();
      uj["device"] = u->device();
      uj["mode"] = guard_mode_name(u->mode());
      uj["trip_reason"] = trip_reason_name(u->trip_reason());
      uj["compares"] = static_cast<std::int64_t>(s.compares);
      uj["divergences"] = static_cast<std::int64_t>(s.divergences);
      uj["sampled"] = static_cast<std::int64_t>(s.sampled);
      uj["quarantines"] = static_cast<std::int64_t>(s.quarantines);
      uj["promotions"] = static_cast<std::int64_t>(s.promotions);
      uj["closes"] = static_cast<std::int64_t>(s.closes);
      units.push_back(uj);
    }
    gj["units"] = units;
    const GuardTotals t = guard->totals();
    gj["divergences"] = static_cast<std::int64_t>(t.divergences);
    gj["quarantines"] = static_cast<std::int64_t>(t.quarantines);
    gj["promotions"] = static_cast<std::int64_t>(t.promotions);
    gj["canary_rejections"] =
        static_cast<std::int64_t>(t.canary_rejections);
    gj["half_open_probes"] =
        static_cast<std::int64_t>(t.half_open_probes);
    gj["closes"] = static_cast<std::int64_t>(t.closes);
    gj["compares"] = static_cast<std::int64_t>(t.compares);
    gj["sampled"] = static_cast<std::int64_t>(t.sampled);
    gj["units_open"] = static_cast<std::int64_t>(t.units_open);
    out["guard"] = gj;
  }

  util::FaultInjector& fi = util::FaultInjector::global();
  if (fi.armed()) {
    util::Json faults = util::Json::array();
    for (const util::FaultInjector::PointStats& p : fi.stats()) {
      util::Json f = util::Json::object();
      f["point"] = p.point;
      f["hits"] = static_cast<std::int64_t>(p.hits);
      f["fires"] = static_cast<std::int64_t>(p.fires);
      faults.push_back(f);
    }
    out["fault_injection"] = faults;
  }
  return out;
}

std::string prometheus_status(Controller& controller) {
  std::ostringstream out;
  out << controller.kernel().metrics().prometheus_text("linuxfp");
  const HealthStatus h = controller.health();
  out << "# TYPE linuxfp_controller_degraded gauge\n";
  out << "linuxfp_controller_degraded " << (h.degraded ? 1 : 0) << "\n";
  out << "# TYPE linuxfp_controller_deploy_attempts counter\n";
  out << "linuxfp_controller_deploy_attempts " << h.deploy_attempts << "\n";
  out << "# TYPE linuxfp_controller_deploy_failures counter\n";
  out << "linuxfp_controller_deploy_failures " << h.deploy_failures << "\n";
  out << "# TYPE linuxfp_controller_recoveries counter\n";
  out << "linuxfp_controller_recoveries " << h.recoveries << "\n";
  out << "# TYPE linuxfp_controller_resyntheses counter\n";
  out << "linuxfp_controller_resyntheses " << controller.resynth_count()
      << "\n";
  out << "# TYPE linuxfp_controller_last_degraded_ns gauge\n";
  out << "linuxfp_controller_last_degraded_ns " << h.last_degraded_ns << "\n";
  out << "# TYPE linuxfp_controller_last_recovered_ns gauge\n";
  out << "linuxfp_controller_last_recovered_ns " << h.last_recovered_ns
      << "\n";
  if (controller.guard() != nullptr) {
    out << "# TYPE linuxfp_guard_compares counter\n";
    out << "linuxfp_guard_compares " << h.guard_compares << "\n";
    out << "# TYPE linuxfp_guard_divergences counter\n";
    out << "linuxfp_guard_divergences " << h.guard_divergences << "\n";
    out << "# TYPE linuxfp_guard_quarantines counter\n";
    out << "linuxfp_guard_quarantines " << h.guard_quarantines << "\n";
    out << "# TYPE linuxfp_guard_promotions counter\n";
    out << "linuxfp_guard_promotions " << h.guard_promotions << "\n";
    out << "# TYPE linuxfp_guard_recoveries counter\n";
    out << "linuxfp_guard_recoveries " << h.guard_recoveries << "\n";
    out << "# TYPE linuxfp_guard_sampled counter\n";
    out << "linuxfp_guard_sampled " << h.guard_sampled << "\n";
    out << "# TYPE linuxfp_guard_units_open gauge\n";
    out << "linuxfp_guard_units_open " << h.guard_units_open << "\n";
  }
  return out.str();
}

std::string format_status(Controller& controller) {
  util::Json j = status_json(controller);
  std::ostringstream out;
  out << "LinuxFP controller status\n";
  out << "=========================\n";
  const util::Json& world = j.at("world");
  out << "introspected: " << world.at("links").as_int() << " links, "
      << world.at("routes").as_int() << " routes, "
      << world.at("forward_rules").as_int() << " FORWARD rules, "
      << world.at("ipsets").as_int() << " ipsets, "
      << world.at("services").as_int() << " ipvs services, ip_forward="
      << (world.at("ip_forward").as_bool() ? "on" : "off") << "\n";
  out << "resyntheses: " << j.at("resyntheses").as_int() << "\n\n";

  const util::Json& graphs = j.at("graphs");
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const util::Json& g = graphs.at(i);
    out << "device " << g.at("device").as_string() << " (hook "
        << g.at("hook").as_string() << "): ";
    bool first = true;
    for (const auto& [name, node] : g.at("nodes").object_items()) {
      if (!first) out << " -> ";
      first = false;
      out << name;
    }
    out << "\n";
  }
  out << "\n";

  const util::Json& atts = j.at("attachments");
  for (std::size_t i = 0; i < atts.size(); ++i) {
    const util::Json& a = atts.at(i);
    const util::Json& s = a.at("stats");
    out << "attachment " << a.at("device").as_string() << ": active='"
        << a.at("active_program").as_string() << "' ("
        << a.at("active_insns").as_int() << " insns, "
        << a.at("programs_loaded").as_int() << " loaded)  runs="
        << s.at("runs").as_int() << " redirect=" << s.at("redirect").as_int()
        << " drop=" << s.at("drop").as_int() << " pass="
        << s.at("pass").as_int() << " user=" << s.at("to_userspace").as_int()
        << " aborted=" << s.at("aborted").as_int() << "\n";
  }

  const util::Json& h = j.at("health");
  out << "\nhealth: "
      << (h.at("degraded").as_bool() ? "DEGRADED (slow path)" : "ok")
      << "  deploys=" << h.at("deploy_attempts").as_int()
      << " failures=" << h.at("deploy_failures").as_int()
      << " rollbacks=" << h.at("device_rollbacks").as_int()
      << " recoveries=" << h.at("recoveries").as_int();
  if (h.at("degraded").as_bool()) {
    out << "  last_error='" << h.at("last_error").as_string() << "'";
  }
  out << "\n";
  return out.str();
}

}  // namespace linuxfp::core
