// Fast Path Deployer: compiles (verifies + loads) synthesized programs and
// installs them on the XDP/TC hooks without packet loss.
//
// Each (device, hook) gets one long-lived Attachment whose entry point is a
// tail-call dispatcher; deploying a new fast path loads the new programs and
// atomically retargets prog_array[0] (paper §IV-A2, Fig 4). The old programs
// remain loaded (like kernel programs pinned by references) until the
// attachment is torn down.
//
// Every per-device deploy is a transaction: if any step fails (program load,
// verifier rejection, map create/update, attach), everything that step
// created is rolled back and the device is atomically degraded to the bare
// slow path (dispatcher PASS fallback) — the datapath never observes a torn
// or structurally stale program. The controller then retries with backoff.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/guard.h"
#include "core/synthesizer.h"
#include "ebpf/loader.h"

namespace linuxfp::core {

struct DeviceFailure {
  std::string device;
  util::Error error;
};

struct DeployReport {
  std::size_t devices = 0;      // devices deployed successfully
  std::size_t programs = 0;
  std::size_t total_insns = 0;
  std::size_t rollbacks = 0;    // device transactions rolled back
  std::vector<DeviceFailure> failures;
  // Wall-clock estimate of what the real controller spends forking clang,
  // linking and libbpf-loading (this reproduction verifies+loads in-process
  // in microseconds; the model keeps Table VI comparable — see
  // EXPERIMENTS.md).
  double modeled_compile_seconds = 0;

  bool all_ok() const { return failures.empty(); }
};

class Deployer {
 public:
  Deployer(kern::Kernel& kernel, const ebpf::HelperRegistry& helpers)
      : kernel_(kernel), helpers_(helpers) {}

  // Deploys every synthesis result; devices with an existing attachment are
  // atomically swapped, new devices get a fresh attachment. Devices that had
  // a fast path but are absent from `results` are swapped to a PASS program
  // (acceleration withdrawn, Linux handles everything). A device whose
  // deploy fails is rolled back, recorded in report.failures, and does not
  // abort the rest of the batch. The failure fallback depends on
  // `old_is_current`: when true (forced redeploy with unchanged structural
  // signature, e.g. snippet injection) the previously active program still
  // matches the live configuration and keeps serving; when false (structure
  // changed) the old program is stale, so the device degrades to the bare
  // slow path (PASS) to preserve fast/slow coherence.
  //
  // `coverage` widens the withdrawal rule for delta synthesis (DESIGN.md
  // §17): when non-null it names every (device, hook-int) the desired
  // configuration still wants — devices in `coverage` but absent from
  // `results` were synthesized before, are unchanged, and keep their current
  // program untouched. When null (from-scratch deploy), coverage is exactly
  // the devices in `results`, preserving the original semantics.
  DeployReport deploy(const std::vector<SynthesisResult>& results,
                      bool old_is_current = false,
                      const std::set<std::pair<std::string, int>>* coverage =
                          nullptr);

  ebpf::Attachment* attachment(const std::string& device,
                               ebpf::HookType hook);
  // Next free dispatcher prog-array index for a device (1 if unattached);
  // the controller passes this to the synthesizer as tail_call_base.
  std::uint32_t next_chain_index(const std::string& device,
                                 ebpf::HookType hook) const;
  std::size_t attachment_count() const { return attachments_.size(); }
  std::uint64_t deploys() const { return deploys_; }
  std::uint64_t rollbacks() const { return rollbacks_; }

  // Binds every attachment (present and future) to `registry` for the
  // fastpath.* / ebpf.* counters, and records per-FPM deploy counts
  // ("fpm.<name>.deployed"). The controller points this at its kernel's
  // registry so one registry covers both paths.
  void set_metrics(util::MetricsRegistry* registry);

  // Routes every hook through the equivalence guard (core/guard.h): slot
  // creation installs the guard's decorator unit on the device instead of
  // the raw attachment, and swap/degrade transitions notify the guard's
  // breaker state machine. Must be set before the first deploy — existing
  // slots are not rewired.
  void set_guard(EquivalenceGuard* guard) { guard_ = guard; }

  // Breaker quarantine: atomically park the hook on its PASS fallback (the
  // swap bumps the flow epoch, flushing cached verdicts). Called by the
  // controller when the guard reports a tripped unit.
  void quarantine(const std::string& device, ebpf::HookType hook);

// present and future. Control-plane call.
  void set_flow_cache(bool on);
  bool flow_cache_enabled() const { return flow_cache_; }
  // Summed over all attachments' per-CPU caches.
  engine::FlowCacheStats flow_cache_stats() const;

  // Execution backend for every attachment, present and future (DESIGN.md
  // §14). Control-plane call.
  void set_exec_engine(ebpf::ExecEngine engine);
  ebpf::ExecEngine exec_engine() const { return exec_engine_; }

  // Translator census + runtime fallback totals, summed over attachments.
  struct JitSummary {
    std::uint64_t translated = 0;      // programs with a threaded stream
    std::uint64_t untranslatable = 0;  // programs the translator refused
    std::uint64_t runs = 0;            // runs that entered the translator
    std::uint64_t fallbacks = 0;       // interpreter demotions within them
  };
  JitSummary jit_summary() const;

 private:
  struct Slot {
    std::string device;
    ebpf::HookType hook = ebpf::HookType::kXdp;
    std::unique_ptr<ebpf::Attachment> attachment;
    std::uint32_t next_chain_index = 1;
    std::uint32_t pass_prog = 0;
    bool has_pass_prog = false;
    bool has_deployed = false;  // at least one successful deploy_one
  };
  util::Status deploy_one(const SynthesisResult& result, DeployReport& report);
  util::Result<Slot*> slot_for(const std::string& device, ebpf::HookType hook);
  // Atomically swaps the device to its PASS fallback (bare slow path).
  // Fault-suppressed: degradation is the terminal fallback and must not fail.
  void degrade_to_pass(Slot& slot);

  kern::Kernel& kernel_;
  const ebpf::HelperRegistry& helpers_;
  std::map<std::pair<std::string, int>, Slot> attachments_;
  std::uint64_t deploys_ = 0;
  std::uint64_t rollbacks_ = 0;
  util::MetricsRegistry* metrics_ = nullptr;
  bool flow_cache_ = false;
  ebpf::ExecEngine exec_engine_ = ebpf::ExecEngine::kInterpreter;
  EquivalenceGuard* guard_ = nullptr;
};

}  // namespace linuxfp::core
