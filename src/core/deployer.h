// Fast Path Deployer: compiles (verifies + loads) synthesized programs and
// installs them on the XDP/TC hooks without packet loss.
//
// Each (device, hook) gets one long-lived Attachment whose entry point is a
// tail-call dispatcher; deploying a new fast path loads the new programs and
// atomically retargets prog_array[0] (paper §IV-A2, Fig 4). The old programs
// remain loaded (like kernel programs pinned by references) until the
// attachment is torn down.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/synthesizer.h"
#include "ebpf/loader.h"

namespace linuxfp::core {

struct DeployReport {
  std::size_t devices = 0;
  std::size_t programs = 0;
  std::size_t total_insns = 0;
  // Wall-clock estimate of what the real controller spends forking clang,
  // linking and libbpf-loading (this reproduction verifies+loads in-process
  // in microseconds; the model keeps Table VI comparable — see
  // EXPERIMENTS.md).
  double modeled_compile_seconds = 0;
};

class Deployer {
 public:
  Deployer(kern::Kernel& kernel, const ebpf::HelperRegistry& helpers)
      : kernel_(kernel), helpers_(helpers) {}

  // Deploys every synthesis result; devices with an existing attachment are
  // atomically swapped, new devices get a fresh attachment. Devices that had
  // a fast path but are absent from `results` are swapped to a PASS program
  // (acceleration withdrawn, Linux handles everything).
  util::Result<DeployReport> deploy(const std::vector<SynthesisResult>& results);

  ebpf::Attachment* attachment(const std::string& device,
                               ebpf::HookType hook);
  // Next free dispatcher prog-array index for a device (1 if unattached);
  // the controller passes this to the synthesizer as tail_call_base.
  std::uint32_t next_chain_index(const std::string& device,
                                 ebpf::HookType hook) const;
  std::size_t attachment_count() const { return attachments_.size(); }
  std::uint64_t deploys() const { return deploys_; }

 private:
  struct Slot {
    std::unique_ptr<ebpf::Attachment> attachment;
    std::uint32_t next_chain_index = 1;
    std::uint32_t pass_prog = 0;
    bool has_pass_prog = false;
  };
  util::Status deploy_one(const SynthesisResult& result, DeployReport& report);
  Slot& slot_for(const std::string& device, ebpf::HookType hook);

  kern::Kernel& kernel_;
  const ebpf::HelperRegistry& helpers_;
  std::map<std::pair<std::string, int>, Slot> attachments_;
  std::uint64_t deploys_ = 0;
};

}  // namespace linuxfp::core
