// The FPM library: code snippets for individual tasks (parse Ethernet/VLAN,
// bridge FDB lookup+forward, FIB lookup+rewrite+forward, iptables filter,
// conntrack affinity), specialized at synthesis time from the "conf"
// attributes in the processing graph. This is the C++ equivalent of the
// paper's Jinja template library (§IV-B3): conditional template blocks become
// conditional emission — code that is not needed for the current
// configuration is simply never generated.
//
// Register conventions inside a synthesized program:
//   r6 = ctx (saved), r7 = data, r8 = data_end, r9 = scratch/param pointer.
// Labels "punt" (XDP_PASS to the Linux slow path) and "drop" are defined by
// emit_epilogue and shared by all snippets of one program.
#pragma once

#include <cstdint>
#include <string>

#include "ebpf/builder.h"
#include "util/json.h"

namespace linuxfp::core {

class FpmLibrary {
 public:
  // Program prologue: saves ctx, loads data/data_end, bounds-checks the
  // Ethernet header, punts multicast destinations when `punt_multicast`.
  static void emit_prologue(ebpf::ProgramBuilder& b, bool punt_multicast);

  // Defines the shared "punt" (PASS) and "drop" labels. Must be emitted
  // exactly once, after all snippets.
  static void emit_epilogue(ebpf::ProgramBuilder& b);

  // Bridge FPM. conf: {bridge_mac, STP_enabled, VLAN_enabled}. When
  // `has_l3_next` the snippet forwards frames addressed to the bridge MAC to
  // the "l3_entry" label instead of punting.
  static void emit_bridge(ebpf::ProgramBuilder& b, const util::Json& conf,
                          bool has_l3_next);

  // Combined filter+router FPM starting at label "l3_entry". filter_conf may
  // be null (no filtering configured). dev_mac is the attachment device's
  // (or bridge's) MAC: frames not addressed to it are punted unless
  // `skip_mac_check` (set when the bridge snippet already dispatched).
  static void emit_l3(ebpf::ProgramBuilder& b, const util::Json& filter_conf,
                      const util::Json& router_conf, const std::string& dev_mac,
                      bool skip_mac_check);

  // Standalone filter FPM (tail-call mode): parses IPv4(+ports if needed),
  // evaluates the FORWARD chain with out-ifindex 0, drops/punts/falls
  // through. Used when the filter is its own chained program.
  static void emit_filter_only(ebpf::ProgramBuilder& b,
                               const util::Json& conf);

  // Load-balancer / conntrack-affinity FPM (ipvs extension, paper future
  // work): punts flows without an established conntrack entry; accelerates
  // established ones by falling through to L3.
  static void emit_conntrack_gate(ebpf::ProgramBuilder& b);

  // Full ipvs fast path (paper Table I, load-balancing row): parse, conntrack
  // lookup via bpf_ct_lookup, NAT rewrite (DNAT toward the scheduled backend
  // on the original direction; un-NAT back to the VIP on replies) with an
  // incremental IP-checksum fix, then fall through to the router FPM. NEW
  // flows punt — scheduling is slow-path work.
  static void emit_loadbalance(ebpf::ProgramBuilder& b,
                               const util::Json& conf);

  // A trivial pass-through NF used by the Fig 10 chain-composition bench:
  // touches the packet (one load) and falls through.
  static void emit_trivial_nf(ebpf::ProgramBuilder& b, int index);

  // Parses a MAC text ("02:00:..") into the two little-endian constants the
  // generated comparisons use. Returns false on parse failure.
  static bool mac_constants(const std::string& mac_text,
                            std::uint32_t& hi32_le, std::uint16_t& lo16_le);
};

}  // namespace linuxfp::core
