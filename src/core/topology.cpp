#include "core/topology.h"

#include <algorithm>

namespace linuxfp::core {

namespace {

// Walks FORWARD and every chain reachable from it through jump targets,
// checking `pred` against each rule (user chains are reachable fast-path
// state too).
bool any_forward_rule(const WorldView& view,
                      bool (*pred)(const util::Json&)) {
  std::vector<std::string> pending{"FORWARD"};
  std::vector<std::string> visited;
  while (!pending.empty()) {
    std::string name = pending.back();
    pending.pop_back();
    if (std::find(visited.begin(), visited.end(), name) != visited.end()) {
      continue;
    }
    visited.push_back(name);
    auto it = view.chains.find(name);
    if (it == view.chains.end()) continue;
    for (const RuleObject& r : it->second.rules) {
      if (pred(r.raw)) return true;
      const std::string& target = r.raw.at("target").as_string();
      if (target != "ACCEPT" && target != "DROP" && target != "RETURN") {
        pending.push_back(target);
      }
    }
  }
  return false;
}

// Does any FORWARD-reachable rule require L4 port parsing? State matches
// need ports too: the conntrack key is the full 5-tuple, so the fast path
// must hand the helper real ports for state parity with the slow path.
bool forward_needs_ports(const WorldView& view) {
  return any_forward_rule(view, [](const util::Json& r) {
    return r.contains("dport") || r.contains("sport") ||
           r.contains("ct_state");
  });
}

// Any rule matching on the output interface? (affects where the filter can
// run relative to the FIB lookup)
bool forward_has_out_if(const WorldView& view) {
  return any_forward_rule(
      view, [](const util::Json& r) { return r.contains("out_if"); });
}

bool forward_uses_sets(const WorldView& view) {
  return any_forward_rule(
      view, [](const util::Json& r) { return r.contains("match_set"); });
}

}  // namespace

util::Json TopologyManager::build(const WorldView& view) const {
  util::Json graphs = util::Json::array();
  for (const auto& [ifindex, link] : view.links) {
    if (!link.up) continue;
    bool attachable =
        (options_.attach_physical && link.kind == "physical" &&
         link.master == 0) ||
        (options_.attach_bridge_ports && link.master != 0 &&
         (link.kind == "veth" || link.kind == "physical")) ||
        (options_.attach_overlay && link.kind == "vxlan" && link.master == 0);
    if (!attachable) continue;
    util::Json g = build_for_device(view, link);
    if (g.at("nodes").size() > 0) graphs.push_back(std::move(g));
  }
  return graphs;
}

util::Json TopologyManager::build_for_device(const WorldView& view,
                                             const LinkObject& link) const {
  util::Json graph = util::Json::object();
  graph["device"] = link.ifname;
  graph["ifindex"] = link.ifindex;
  graph["hook"] = options_.hook;
  graph["dev_mac"] = link.mac;
  util::Json nodes = util::Json::object();

  bool routing_active = view.ip_forward() && view.global_route_count() > 0;
  bool filtering_active =
      view.forward_rule_count() > 0 || view.forward_has_policy_drop();

  const LinkObject* master = nullptr;
  if (link.master != 0) {
    auto it = view.links.find(link.master);
    if (it != view.links.end()) master = &it->second;
  }

  auto filter_conf = [&view]() {
    util::Json fconf = util::Json::object();
    fconf["hook"] = "FORWARD";
    fconf["rule_count"] = static_cast<std::int64_t>(view.forward_rule_count());
    fconf["needs_ports"] = forward_needs_ports(view);
    fconf["uses_sets"] = forward_uses_sets(view);
    fconf["has_out_if"] = forward_has_out_if(view);
    return fconf;
  };

  bool br_nf = view.sysctls.count("net.bridge.bridge-nf-call-iptables") &&
               view.sysctls.at("net.bridge.bridge-nf-call-iptables") != 0;
  bool lb_active = !view.services.empty();

  auto lb_node = [&view]() {
    util::Json conf = util::Json::object();
    conf["service_count"] =
        static_cast<std::int64_t>(view.services.size());
    // The VIP endpoints are baked into the synthesized code: traffic not
    // addressed to any service skips the conntrack gate entirely.
    util::Json services = util::Json::array();
    for (const ServiceObject& svc : view.services) {
      util::Json sj = util::Json::object();
      sj["vip"] = svc.vip;
      sj["port"] = svc.port;
      sj["proto"] = svc.proto;
      services.push_back(sj);
    }
    conf["services"] = services;
    util::Json node = util::Json::object();
    node["conf"] = conf;
    node["next_nf"] = "router";
    return node;
  };

  // --- bridge node: device is an enslaved bridge port -------------------------
  if (master && master->kind == "bridge") {
    util::Json conf = util::Json::object();
    conf["bridge"] = master->ifname;
    conf["bridge_ifindex"] = master->ifindex;
    conf["bridge_mac"] = master->mac;
    conf["STP_enabled"] = master->stp;
    conf["VLAN_enabled"] = master->vlan_filtering;
    // br_netfilter: bridged traffic traverses the FORWARD chain, so the
    // bridge FPM must evaluate it too (specialized in only when active).
    if (br_nf && filtering_active) {
      conf["br_netfilter"] = true;
      conf["filter"] = filter_conf();
    }
    util::Json node = util::Json::object();
    node["conf"] = conf;
    // Routed traffic addressed to the bridge interface continues to the
    // router FPM when the bridge has addresses and routing is active
    // (paper: "routes referring to the bridge interfaces will create a
    // next_nf: router FPM within the bridge JSON description").
    bool bridge_routes = routing_active && master->has_addresses();
    if (bridge_routes) node["next_nf"] = "router";
    nodes["bridge"] = node;
    if (bridge_routes) {
      if (lb_active) nodes["loadbalance"] = lb_node();
      if (filtering_active) {
        util::Json fnode = util::Json::object();
        fnode["conf"] = filter_conf();
        fnode["next_nf"] = "router";
        nodes["filter"] = fnode;
      }
      util::Json rconf = util::Json::object();
      rconf["route_count"] =
          static_cast<std::int64_t>(view.global_route_count());
      // Locally-terminated traffic (addresses owned by the bridge) is a
      // slow-path concern; the synthesized code punts it before the FIB
      // lookup (configuration-specialized early exit).
      util::Json locals = util::Json::array();
      for (const std::string& addr : master->addrs) {
        locals.push_back(addr.substr(0, addr.find('/')));
      }
      rconf["local_addrs"] = locals;
      util::Json rnode = util::Json::object();
      rnode["conf"] = rconf;
      nodes["router"] = rnode;
    }
    graph["nodes"] = nodes;
    return graph;
  }

  // --- plain L3 device ----------------------------------------------------------
  if (routing_active && link.has_addresses()) {
    if (lb_active) nodes["loadbalance"] = lb_node();
    if (filtering_active) {
      util::Json fnode = util::Json::object();
      fnode["conf"] = filter_conf();
      fnode["next_nf"] = "router";
      nodes["filter"] = fnode;
    }
    util::Json rconf = util::Json::object();
    rconf["route_count"] =
        static_cast<std::int64_t>(view.global_route_count());
    util::Json locals = util::Json::array();
    for (const std::string& addr : link.addrs) {
      locals.push_back(addr.substr(0, addr.find('/')));
    }
    rconf["local_addrs"] = locals;
    util::Json rnode = util::Json::object();
    rnode["conf"] = rconf;
    nodes["router"] = rnode;
  }

  graph["nodes"] = nodes;
  return graph;
}

}  // namespace linuxfp::core
