// Runtime equivalence guard (DESIGN.md §13): canary deployment, sampled
// shadow execution and per-FPM circuit breakers with self-healing
// quarantine.
//
// LinuxFP's safety argument — synthesized FPMs are semantically equivalent
// to the slow path — is checked offline (verifier + differential fuzz) but
// was never enforced at runtime: one latent synthesizer/JIT/coherence bug
// would misforward at line rate forever. The guard closes that gap with one
// mechanism used in two regimes:
//
//   * Canary (shadow mode): a newly swapped-in program's verdict is computed
//     on a COPY of each packet and recorded; the guard then returns kPass so
//     the ORIGINAL packet traverses the slow path authoritatively. The
//     kernel's shadow capture (kern::ShadowObserver) reports what the slow
//     path actually did — terminal summary plus every attempted transmit —
//     and the guard compares verdict and rewritten bytes. N clean compares
//     promote the program to active; the first divergence rejects it.
//     Because the slow path serves every canary packet, a diverging canary
//     never alters externally visible behaviour.
//
//   * Sampled shadow execution (active mode): a deterministic per-flow
//     sampler (1-in-K by mixed rss_hash, so the sample is uncorrelated with
//     RETA steering) keeps replaying a thin slice of traffic through the
//     slow path exactly as in canary mode. Sampled flows are served by the
//     slow path; the other (K-1)/K of traffic runs the fast path untouched,
//     so steady-state overhead is ~S/(K·F) of the fast-path cost.
//
// Divergence — or a sliding-window abort-rate breach — trips the per-unit
// circuit breaker: the unit atomically flips to kQuarantined (the guard
// returns kPass before even probing the flow cache), and the controller
// completes the quarantine on its next turn via the deployer's
// degrade-to-PASS path (which also bumps the flow epoch, flushing cached
// verdicts). Re-probes are scheduled with bounded jittered backoff; a
// redeploy moves the unit to kHalfOpen (shadow probing), and a clean probe
// streak closes the breaker back to kActive.
//
// Threading: verdict recording runs on engine workers (per-CPU expectation
// slots, release/acquire on the slot cookie); comparison and trips run on
// the single slow-path thread (atomics only); quarantine completion,
// backoff and re-probe run on the controller thread via maintain().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/loader.h"
#include "kernel/kernel.h"
#include "util/rng.h"

namespace linuxfp::core {

struct GuardPolicy {
  bool enabled = false;
  // Canary: clean compares required to promote shadow -> active; the first
  // divergence rejects (quarantines) instead.
  std::uint32_t canary_packets = 128;
  // Active-mode sampling: 1-in-K flows by mixed rss_hash (0 disables
  // sampling; promoted programs then run unchecked).
  std::uint32_t sample_every = 64;
  // Sliding-window abort-rate breaker over fast-path runs in active mode.
  std::uint32_t abort_window = 256;
  double abort_rate_threshold = 0.5;
  // Half-open: clean shadow compares required to close the breaker.
  std::uint32_t half_open_packets = 64;
  // Per-CPU deferred-expectation slots (power of two). Must exceed the
  // engine's slow-ring depth so an in-flight cookie is never overwritten;
  // 4096 covers the default 1024-deep slow ring 4x.
  std::uint32_t expectation_slots = 4096;
  // Re-probe backoff after a quarantine: base doubling per consecutive trip
  // up to the cap, +/- jitter (deterministic per seed).
  std::uint64_t reprobe_base_ns = 50'000'000;     // 50 ms
  std::uint64_t reprobe_max_ns = 5'000'000'000;   // 5 s cap
  double reprobe_jitter = 0.2;
  std::uint64_t reprobe_jitter_seed = 0x6a2dbeefu;
};

// Breaker state of one guarded (device, hook) unit.
enum class GuardMode : std::uint8_t {
  kShadow,       // canary: slow path serves, every packet compared
  kActive,       // fast path serves, 1-in-K flows compared
  kQuarantined,  // breaker open: unconditional kPass (bare slow path)
  kHalfOpen,     // re-probe after redeploy: shadow semantics
};

const char* guard_mode_name(GuardMode mode);

// Why a breaker tripped (sticky until the next close).
enum class TripReason : std::uint8_t { kNone, kDivergence, kAbortRate, kForced };

const char* trip_reason_name(TripReason reason);

// Counters of one unit; all datapath/slow-thread written fields are atomics,
// so a live read is safe (and exact once traffic quiesces).
struct GuardUnitStats {
  std::uint64_t shadow_runs = 0;      // verdicts recorded for comparison
  std::uint64_t compares = 0;         // resolved comparisons
  std::uint64_t divergences = 0;
  std::uint64_t skipped = 0;          // uncomparable (ARP-pending, AF_XDP…)
  std::uint64_t stale = 0;            // cookie never resolved in time
  std::uint64_t sampled = 0;          // active-mode sampled packets
  std::uint64_t quarantine_passes = 0;  // packets short-circuited while open
  std::uint64_t promotions = 0;       // canary -> active
  std::uint64_t canary_rejections = 0;
  std::uint64_t quarantines = 0;      // breaker trips (any reason)
  std::uint64_t half_open_probes = 0; // redeploys that entered half-open
  std::uint64_t closes = 0;           // half-open -> active recoveries
};

class EquivalenceGuard;

// The PacketProgram decorator installed on the device hook instead of the
// raw attachment. Owned by the guard; one per (device, hook).
class GuardUnit : public kern::PacketProgram {
 public:
  GuardUnit(EquivalenceGuard& guard, std::uint8_t id, std::string device,
            ebpf::HookType hook, ebpf::Attachment* attachment);

  // kern::PacketProgram. run() is the inline (sim) entry: shadow captures
  // arm on the kernel directly. run_on_cpu() is the engine-worker entry:
  // the cookie rides in pkt.guard_cookie and the slow-path thread adopts it.
  RunResult run(net::Packet& pkt, int ingress_ifindex) override;
  RunResult run_on_cpu(net::Packet& pkt, int ingress_ifindex,
                       unsigned cpu) override;
  void prepare_cpus(unsigned n) override;
  std::string name() const override;

  const std::string& device() const { return device_; }
  ebpf::HookType hook() const { return hook_; }
  ebpf::Attachment* attachment() const { return att_; }
  GuardMode mode() const { return mode_.load(std::memory_order_acquire); }
  TripReason trip_reason() const {
    return trip_reason_.load(std::memory_order_relaxed);
  }
  GuardUnitStats stats() const;

 private:
  friend class EquivalenceGuard;

  // One recorded fast-path expectation awaiting its slow-path truth. The
  // cookie is released after the payload write and acquired before the read;
  // a slot is only reused after its sequence advances by the whole ring,
  // which exceeds any in-flight window (see GuardPolicy::expectation_slots).
  struct Slot {
    std::atomic<std::uint64_t> cookie{0};
    Verdict verdict = Verdict::kPass;
    int oif = 0;
    std::uint64_t armed_ns = 0;
    std::vector<std::uint8_t> bytes;  // fast-rewritten frame (kTx/kRedirect)
  };
  struct CpuSlots {
    std::uint64_t next_seq = 0;  // owning worker only
    std::vector<Slot> slots;
  };

  // Common path behind both entry points; inline_path distinguishes the
  // kernel's same-thread rx (run) from an engine worker (run_on_cpu).
  RunResult dispatch(net::Packet& pkt, int ingress_ifindex, unsigned cpu,
                     bool inline_path);
  // Shadow-semantics run shared by kShadow/kHalfOpen/sampled-kActive:
  // records the expectation, arms the capture, returns kPass.
  RunResult run_shadowed(net::Packet& pkt, int ingress_ifindex, unsigned cpu,
                         bool inline_path);
  // Resolution: compare one expectation against the slow path's truth.
  void resolve(unsigned cpu, std::uint64_t cookie,
               const kern::RxSummary& summary,
               const std::vector<kern::ShadowEmission>& emissions);
  void note_clean();
  void trip(TripReason reason, std::uint64_t now_ns);
  void note_abort_window(bool aborted);

  EquivalenceGuard& guard_;
  std::uint8_t id_;
  std::string device_;
  ebpf::HookType hook_;
  ebpf::Attachment* att_;

  std::atomic<GuardMode> mode_{GuardMode::kShadow};
  std::atomic<std::uint32_t> clean_streak_{0};
  std::atomic<bool> pending_quarantine_{false};
  std::atomic<TripReason> trip_reason_{TripReason::kNone};
  std::atomic<std::uint64_t> last_trip_ns_{0};

  // Abort-rate window (relaxed; sampling-grade accuracy is enough).
  std::atomic<std::uint32_t> win_runs_{0};
  std::atomic<std::uint32_t> win_aborts_{0};

  // stats (names mirror GuardUnitStats)
  std::atomic<std::uint64_t> shadow_runs_{0}, compares_{0}, divergences_{0},
      skipped_{0}, stale_{0}, sampled_{0}, quarantine_passes_{0},
      promotions_{0}, canary_rejections_{0}, quarantines_{0},
      half_open_probes_{0}, closes_{0};

  // Control-plane bookkeeping. consecutive_trips_ is atomic because the
  // slow-path thread zeroes it when a half-open probe streak closes the
  // breaker; reprobe_at_ns_ is controller-thread only.
  std::atomic<std::uint32_t> consecutive_trips_{0};
  std::uint64_t reprobe_at_ns_ = 0;  // 0 = none scheduled

  std::vector<std::unique_ptr<CpuSlots>> cpus_;
};

// Aggregate view the controller merges into HealthStatus.
struct GuardTotals {
  std::uint64_t divergences = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t promotions = 0;
  std::uint64_t canary_rejections = 0;
  std::uint64_t half_open_probes = 0;
  std::uint64_t closes = 0;
  std::uint64_t compares = 0;
  std::uint64_t sampled = 0;
  // Units currently not in kActive (shadow/quarantined/half-open).
  std::uint32_t units_open = 0;
  // Units currently quarantined or half-open (breaker not closed).
  std::uint32_t units_unhealthy = 0;
  std::uint32_t units = 0;
};

// What one maintain() pass did / wants done.
struct GuardMaintenance {
  // Units whose breaker tripped since the last pass; the controller already
  // had the deployer park them on PASS by the time maintain() returns.
  std::vector<std::string> quarantined_devices;
  bool reprobe_due = false;  // force a redeploy (re-enter via on_swap)
};

class EquivalenceGuard : public kern::ShadowObserver {
 public:
  EquivalenceGuard(kern::Kernel& kernel, GuardPolicy policy);
  ~EquivalenceGuard() override;
  EquivalenceGuard(const EquivalenceGuard&) = delete;
  EquivalenceGuard& operator=(const EquivalenceGuard&) = delete;

  const GuardPolicy& policy() const { return policy_; }
  kern::Kernel& kernel() { return kernel_; }

  // Deployer integration: returns the PacketProgram to install on the hook
  // (creating the unit on first sight). The attachment must outlive the
  // guard or be re-registered after reconstruction.
  kern::PacketProgram* attach_unit(const std::string& device,
                                   ebpf::HookType hook,
                                   ebpf::Attachment* attachment);
  // A successful atomic swap activated a (possibly new) program: fresh units
  // and re-deploys re-enter canary shadow; a quarantined unit's redeploy
  // enters half-open probing.
  void on_swap(const std::string& device, ebpf::HookType hook,
               std::uint64_t now_ns);
  // The device was parked on the PASS fallback (withdrawal or failure
  // degrade). Quarantined units stay quarantined; everything else resets to
  // shadow so the next real deploy re-canaries.
  void on_degrade(const std::string& device, ebpf::HookType hook);

  // Controller-thread pass: completes pending quarantines through
  // `quarantine_cb` (the deployer's degrade path), schedules re-probes with
  // backoff, and reports whether a re-probe deadline has passed. The
  // guard.breaker fault point fires here, force-tripping active units.
  using QuarantineFn =
      std::function<void(const std::string& device, ebpf::HookType hook)>;
  GuardMaintenance maintain(std::uint64_t now_ns,
                            const QuarantineFn& quarantine_cb);
  // Earliest pending re-probe deadline (0 = none).
  std::uint64_t next_reprobe_ns() const;

  GuardUnit* unit(const std::string& device, ebpf::HookType hook);
  std::vector<GuardUnit*> units();
  GuardTotals totals() const;

  // kern::ShadowObserver: the slow path finished a shadowed packet.
  void on_shadow_resolved(std::uint64_t cookie, const kern::RxSummary& summary,
                          std::vector<kern::ShadowEmission>&& emissions)
      override;

  // Deterministic per-flow sampler: true when the (mixed) hash falls in the
  // 1-in-K sample. Exposed for tests and the sampling-cost bench.
  static bool sampled_hash(std::uint32_t rss_hash, std::uint32_t k);

  // Unit ids are bounded so cookie decoding on the slow-path thread can index
  // a fixed atomic array while the controller thread keeps creating units.
  static constexpr std::size_t kMaxUnits = 64;

 private:
  friend class GuardUnit;
  std::uint64_t reprobe_delay_ns(std::uint32_t consecutive_trips);

  kern::Kernel& kernel_;
  GuardPolicy policy_;
  std::map<std::pair<std::string, int>, std::unique_ptr<GuardUnit>> units_;
  std::array<std::atomic<GuardUnit*>, kMaxUnits> by_id_{};
  util::Rng reprobe_rng_;
};

}  // namespace linuxfp::core
