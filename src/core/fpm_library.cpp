#include "core/fpm_library.h"

#include "ebpf/insn.h"
#include "ebpf/kernel_helpers.h"
#include "net/ipaddr.h"
#include "net/mac.h"

namespace linuxfp::core {

using namespace ebpf;  // NOLINT: codegen reads much better unqualified

namespace {
// Stack frame layout (offsets relative to r10, which sits at +512):
// helper parameter block lives at r10-128.
constexpr std::int64_t kParamBase = -128;

// Ethernet field offsets.
constexpr std::int32_t kOffEthDst = 0;
constexpr std::int32_t kOffEthSrc = 6;
constexpr std::int32_t kOffEthType = 12;
// IPv4 field offsets (untagged frame).
constexpr std::int32_t kOffIp = 14;
constexpr std::int32_t kOffIpFrag = kOffIp + 6;
constexpr std::int32_t kOffIpTtl = kOffIp + 8;
constexpr std::int32_t kOffIpProto = kOffIp + 9;
constexpr std::int32_t kOffIpCsum = kOffIp + 10;
constexpr std::int32_t kOffIpSrc = kOffIp + 12;
constexpr std::int32_t kOffIpDst = kOffIp + 16;
constexpr std::int32_t kOffL4 = kOffIp + 20;
}  // namespace

bool FpmLibrary::mac_constants(const std::string& mac_text,
                               std::uint32_t& hi32_le,
                               std::uint16_t& lo16_le) {
  auto mac = net::MacAddr::parse(mac_text);
  if (!mac.ok()) return false;
  const auto& b = mac.value().bytes();
  hi32_le = std::uint32_t{b[0]} | std::uint32_t{b[1]} << 8 |
            std::uint32_t{b[2]} << 16 | std::uint32_t{b[3]} << 24;
  lo16_le = static_cast<std::uint16_t>(std::uint16_t{b[4]} |
                                       std::uint16_t{b[5]} << 8);
  return true;
}

void FpmLibrary::emit_prologue(ebpf::ProgramBuilder& b, bool punt_multicast) {
  b.mov_reg(kR6, kR1);
  b.ldx(kR7, kR6, kCtxData, MemSize::kU64);
  b.ldx(kR8, kR6, kCtxDataEnd, MemSize::kU64);
  // Bounds: Ethernet header must be present.
  b.mov_reg(kR2, kR7);
  b.add(kR2, 14);
  b.jgt_reg(kR2, kR8, "punt");
  if (punt_multicast) {
    // Multicast/broadcast destinations (ARP requests, STP BPDUs, flooding)
    // are corner cases: slow path.
    b.ldx(kR2, kR7, kOffEthDst, MemSize::kU8);
    b.and_(kR2, 0x01);
    b.jne(kR2, 0, "punt");
  }
}

void FpmLibrary::emit_epilogue(ebpf::ProgramBuilder& b) {
  b.label("punt");
  b.ret(kActPass);
  b.label("drop");
  b.ret(kActDrop);
}

void FpmLibrary::emit_bridge(ebpf::ProgramBuilder& b, const util::Json& conf,
                             bool has_l3_next) {
  b.new_scope();
  const bool vlan = conf.at("VLAN_enabled").as_bool();

  // params block for bpf_fdb_lookup at r10 + kParamBase.
  b.mov_reg(kR9, kR10);
  b.add(kR9, kParamBase);

  // ifindex <- ctx->ingress_ifindex
  b.ldx(kR2, kR6, kCtxIfindex, MemSize::kU64);
  b.stx(kR9, kFdbParamIfindex, kR2, MemSize::kU32);

  if (vlan) {
    // VLAN parsing snippet: included only when the bridge filters VLANs.
    // Tagged frame: ethertype == 0x8100, VID at offset 14..16.
    b.st(kR9, kFdbParamVlan, 0, MemSize::kU16);
    b.ldx(kR2, kR7, kOffEthType, MemSize::kU16);
    b.be16(kR2);
    b.jne(kR2, 0x8100, b.scoped("novlan"));
    b.mov_reg(kR2, kR7);
    b.add(kR2, 18);
    b.jgt_reg(kR2, kR8, "punt");
    b.ldx(kR2, kR7, 14, MemSize::kU16);
    b.be16(kR2);
    b.and_(kR2, 0x0fff);
    b.stx(kR9, kFdbParamVlan, kR2, MemSize::kU16);
    b.label(b.scoped("novlan"));
  } else {
    b.st(kR9, kFdbParamVlan, 0, MemSize::kU16);
  }

  // dmac / smac copies (raw byte copies, endianness irrelevant).
  b.ldx(kR2, kR7, kOffEthDst, MemSize::kU32);
  b.stx(kR9, kFdbParamDmac, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffEthDst + 4, MemSize::kU16);
  b.stx(kR9, kFdbParamDmac + 4, kR2, MemSize::kU16);
  b.ldx(kR2, kR7, kOffEthSrc, MemSize::kU32);
  b.stx(kR9, kFdbParamSmac, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffEthSrc + 4, MemSize::kU16);
  b.stx(kR9, kFdbParamSmac + 4, kR2, MemSize::kU16);

  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperFdbLookup);

  // Success: (optionally evaluate br_netfilter) then redirect out the
  // learned port.
  b.jne(kR0, static_cast<std::int64_t>(kFdbLkupSuccess),
        b.scoped("fdb_not_fwd"));

  if (conf.at("br_netfilter").as_bool()) {
    // bridge-nf-call-iptables=1: bridged IPv4 traffic must pass the FORWARD
    // chain; evaluate it through the bpf_ipt_lookup helper with the egress
    // port from the FDB result. Non-IPv4 frames are not iptables subjects.
    const util::Json& fconf = conf.at("filter");
    const bool needs_ports = fconf.at("needs_ports").as_bool();
    b.ldx(kR2, kR7, kOffEthType, MemSize::kU16);
    b.be16(kR2);
    b.jne(kR2, 0x0800, b.scoped("br_redirect"));
    b.mov_reg(kR2, kR7);
    b.add(kR2, kOffL4);
    b.jgt_reg(kR2, kR8, "punt");
    b.ldx(kR2, kR7, kOffIp, MemSize::kU8);
    b.jne(kR2, 0x45, "punt");
    b.ldx(kR2, kR7, kOffIpFrag, MemSize::kU16);
    b.be16(kR2);
    b.and_(kR2, 0x3fff);
    b.jne(kR2, 0, "punt");

    // ipt params in a second stack block (r3); the FDB params stay in r9.
    b.mov_reg(kR3, kR10);
    b.add(kR3, kParamBase + 64);
    b.ldx(kR2, kR7, kOffIpSrc, MemSize::kU32);
    b.be32(kR2);
    b.stx(kR3, kIptParamSrc, kR2, MemSize::kU32);
    b.ldx(kR2, kR7, kOffIpDst, MemSize::kU32);
    b.be32(kR2);
    b.stx(kR3, kIptParamDst, kR2, MemSize::kU32);
    b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
    b.stx(kR3, kIptParamProto, kR2, MemSize::kU8);
    b.st(kR3, kIptParamHook, kIptHookForward, MemSize::kU8);
    b.st(kR3, kIptParamSport, 0, MemSize::kU16);
    b.st(kR3, kIptParamDport, 0, MemSize::kU16);
    if (needs_ports) {
      b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
      b.jeq(kR2, 6, b.scoped("br_ports"));
      b.jne(kR2, 17, b.scoped("br_ports_done"));
      b.label(b.scoped("br_ports"));
      b.mov_reg(kR2, kR7);
      b.add(kR2, kOffL4 + 4);
      b.jgt_reg(kR2, kR8, "punt");
      b.ldx(kR2, kR7, kOffL4, MemSize::kU16);
      b.be16(kR2);
      b.stx(kR3, kIptParamSport, kR2, MemSize::kU16);
      b.ldx(kR2, kR7, kOffL4 + 2, MemSize::kU16);
      b.be16(kR2);
      b.stx(kR3, kIptParamDport, kR2, MemSize::kU16);
      b.label(b.scoped("br_ports_done"));
    }
    b.ldx(kR2, kR6, kCtxIfindex, MemSize::kU64);
    b.stx(kR3, kIptParamInIf, kR2, MemSize::kU32);
    b.ldx(kR2, kR9, kFdbParamOutIfindex, MemSize::kU32);
    b.stx(kR3, kIptParamOutIf, kR2, MemSize::kU32);
    b.mov_reg(kR1, kR6);
    b.mov_reg(kR2, kR3);
    b.call(kHelperIptLookup);
    b.jeq(kR0, static_cast<std::int64_t>(kIptVerdictDrop), "drop");
    b.jeq(kR0, static_cast<std::int64_t>(kIptVerdictPunt), "punt");
    b.label(b.scoped("br_redirect"));
  }

  b.ldx(kR1, kR9, kFdbParamOutIfindex, MemSize::kU32);
  b.call(kHelperRedirect);
  b.exit();

  b.label(b.scoped("fdb_not_fwd"));
  if (has_l3_next) {
    // Frames addressed to the bridge MAC continue to the router FPM
    // (next_nf: router); everything else (FDB miss -> flooding, learning,
    // STP) is slow-path work.
    std::uint32_t hi;
    std::uint16_t lo;
    if (mac_constants(conf.at("bridge_mac").as_string(), hi, lo)) {
      b.ldx(kR2, kR7, kOffEthDst, MemSize::kU32);
      b.jne(kR2, hi, "punt");
      b.ldx(kR2, kR7, kOffEthDst + 4, MemSize::kU16);
      b.jne(kR2, lo, "punt");
      b.ja("l3_entry");
      return;
    }
  }
  b.ja("punt");
}

void FpmLibrary::emit_l3(ebpf::ProgramBuilder& b,
                         const util::Json& filter_conf,
                         const util::Json& router_conf,
                         const std::string& dev_mac, bool skip_mac_check) {
  b.new_scope();
  b.label("l3_entry");

  if (!skip_mac_check) {
    // Only frames addressed to us are routed; others go to the slow path.
    std::uint32_t hi;
    std::uint16_t lo;
    if (mac_constants(dev_mac, hi, lo)) {
      b.ldx(kR2, kR7, kOffEthDst, MemSize::kU32);
      b.jne(kR2, hi, "punt");
      b.ldx(kR2, kR7, kOffEthDst + 4, MemSize::kU16);
      b.jne(kR2, lo, "punt");
    }
  }

  // EtherType must be IPv4 (VLAN-tagged L3 traffic is a slow-path corner
  // case unless a bridge handled the tag already).
  b.ldx(kR2, kR7, kOffEthType, MemSize::kU16);
  b.be16(kR2);
  b.jne(kR2, 0x0800, "punt");

  // Bounds: full IPv4 header.
  b.mov_reg(kR2, kR7);
  b.add(kR2, kOffL4);
  b.jgt_reg(kR2, kR8, "punt");

  // IHL must be 5 (options are slow-path).
  b.ldx(kR2, kR7, kOffIp, MemSize::kU8);
  b.jne(kR2, 0x45, "punt");

  // Fragments are slow-path (paper Table I: IP (de)fragmentation).
  b.ldx(kR2, kR7, kOffIpFrag, MemSize::kU16);
  b.be16(kR2);
  b.and_(kR2, 0x3fff);
  b.jne(kR2, 0, "punt");

  // TTL must survive the decrement; expiry generates ICMP in the slow path.
  b.ldx(kR2, kR7, kOffIpTtl, MemSize::kU8);
  b.jle(kR2, 1, "punt");

  // Locally-terminated traffic punts before any lookup work: the device's
  // own addresses are baked in at synthesis time (specialization).
  const util::Json& locals = router_conf.at("local_addrs");
  if (locals.is_array() && locals.size() > 0) {
    b.ldx(kR2, kR7, kOffIpDst, MemSize::kU32);
    b.be32(kR2);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      auto addr = net::Ipv4Addr::parse(locals.at(i).as_string());
      if (addr.ok()) {
        b.jeq(kR2, addr->value(), "punt");
      }
    }
  }

  // --- FIB lookup --------------------------------------------------------------
  b.mov_reg(kR9, kR10);
  b.add(kR9, kParamBase);
  b.ldx(kR2, kR6, kCtxIfindex, MemSize::kU64);
  b.stx(kR9, kFibParamIfindex, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffIpDst, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kFibParamDst, kR2, MemSize::kU32);
  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.mov(kR3, kFibParamSize);
  b.mov(kR4, 0);
  b.call(kHelperFibLookup);
  // Anything but SUCCESS (no route, no neighbour yet) punts: the slow path
  // will ARP / generate errors, then subsequent packets stay on the fast
  // path.
  b.jne(kR0, static_cast<std::int64_t>(kFibLkupSuccess), "punt");

  // --- filter (iptables FORWARD) -------------------------------------------------
  if (!filter_conf.is_null()) {
    const bool needs_ports = filter_conf.at("needs_ports").as_bool();
    // A second parameter block right after the FIB one.
    b.mov_reg(kR9, kR10);
    b.add(kR9, kParamBase + 64);
    b.ldx(kR2, kR7, kOffIpSrc, MemSize::kU32);
    b.be32(kR2);
    b.stx(kR9, kIptParamSrc, kR2, MemSize::kU32);
    b.ldx(kR2, kR7, kOffIpDst, MemSize::kU32);
    b.be32(kR2);
    b.stx(kR9, kIptParamDst, kR2, MemSize::kU32);
    b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
    b.stx(kR9, kIptParamProto, kR2, MemSize::kU8);
    b.st(kR9, kIptParamHook, kIptHookForward, MemSize::kU8);
    if (needs_ports) {
      // Port parsing snippet: emitted only when some rule matches ports.
      b.st(kR9, kIptParamSport, 0, MemSize::kU16);
      b.st(kR9, kIptParamDport, 0, MemSize::kU16);
      b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
      b.jeq(kR2, 6, b.scoped("parse_ports"));
      b.jne(kR2, 17, b.scoped("ports_done"));
      b.label(b.scoped("parse_ports"));
      b.mov_reg(kR2, kR7);
      b.add(kR2, kOffL4 + 4);
      b.jgt_reg(kR2, kR8, "punt");
      b.ldx(kR2, kR7, kOffL4, MemSize::kU16);
      b.be16(kR2);
      b.stx(kR9, kIptParamSport, kR2, MemSize::kU16);
      b.ldx(kR2, kR7, kOffL4 + 2, MemSize::kU16);
      b.be16(kR2);
      b.stx(kR9, kIptParamDport, kR2, MemSize::kU16);
      b.label(b.scoped("ports_done"));
    } else {
      b.st(kR9, kIptParamSport, 0, MemSize::kU16);
      b.st(kR9, kIptParamDport, 0, MemSize::kU16);
    }
    // in/out ifindex: ingress from ctx; egress from the FIB result, so -o
    // rules match correctly (the fused filter runs after route lookup).
    b.ldx(kR2, kR6, kCtxIfindex, MemSize::kU64);
    b.stx(kR9, kIptParamInIf, kR2, MemSize::kU32);
    b.mov_reg(kR3, kR10);
    b.add(kR3, kParamBase);
    b.ldx(kR2, kR3, kFibParamOutIfindex, MemSize::kU32);
    b.stx(kR9, kIptParamOutIf, kR2, MemSize::kU32);

    b.mov_reg(kR1, kR6);
    b.mov_reg(kR2, kR9);
    b.call(kHelperIptLookup);
    b.jeq(kR0, static_cast<std::int64_t>(kIptVerdictDrop), "drop");
    b.jeq(kR0, static_cast<std::int64_t>(kIptVerdictPunt), "punt");
  }

  // --- rewrite + forward ----------------------------------------------------------
  b.mov_reg(kR9, kR10);
  b.add(kR9, kParamBase);
  // dmac <- fib.dmac, smac <- fib.smac
  b.ldx(kR2, kR9, kFibParamDmac, MemSize::kU32);
  b.stx(kR7, kOffEthDst, kR2, MemSize::kU32);
  b.ldx(kR2, kR9, kFibParamDmac + 4, MemSize::kU16);
  b.stx(kR7, kOffEthDst + 4, kR2, MemSize::kU16);
  b.ldx(kR2, kR9, kFibParamSmac, MemSize::kU32);
  b.stx(kR7, kOffEthSrc, kR2, MemSize::kU32);
  b.ldx(kR2, kR9, kFibParamSmac + 4, MemSize::kU16);
  b.stx(kR7, kOffEthSrc + 4, kR2, MemSize::kU16);

  // TTL decrement with incremental checksum update (RFC 1141): the checksum,
  // read as a big-endian value, increases by 0x0100 with end-around carry.
  b.ldx(kR2, kR7, kOffIpTtl, MemSize::kU8);
  b.sub(kR2, 1);
  b.stx(kR7, kOffIpTtl, kR2, MemSize::kU8);
  b.ldx(kR2, kR7, kOffIpCsum, MemSize::kU16);
  b.be16(kR2);
  b.add(kR2, 0x0100);
  b.mov_reg(kR3, kR2);
  b.rsh(kR3, 16);
  b.add_reg(kR2, kR3);
  b.and_(kR2, 0xffff);
  b.be16(kR2);
  b.stx(kR7, kOffIpCsum, kR2, MemSize::kU16);

  b.ldx(kR1, kR9, kFibParamOutIfindex, MemSize::kU32);
  b.call(kHelperRedirect);
  b.exit();
}

void FpmLibrary::emit_filter_only(ebpf::ProgramBuilder& b,
                                  const util::Json& conf) {
  b.new_scope();
  const bool needs_ports = conf.at("needs_ports").as_bool();

  b.ldx(kR2, kR7, kOffEthType, MemSize::kU16);
  b.be16(kR2);
  b.jne(kR2, 0x0800, "punt");
  b.mov_reg(kR2, kR7);
  b.add(kR2, kOffL4);
  b.jgt_reg(kR2, kR8, "punt");
  b.ldx(kR2, kR7, kOffIp, MemSize::kU8);
  b.jne(kR2, 0x45, "punt");
  b.ldx(kR2, kR7, kOffIpFrag, MemSize::kU16);
  b.be16(kR2);
  b.and_(kR2, 0x3fff);
  b.jne(kR2, 0, "punt");

  b.mov_reg(kR9, kR10);
  b.add(kR9, kParamBase + 64);
  b.ldx(kR2, kR7, kOffIpSrc, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kIptParamSrc, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffIpDst, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kIptParamDst, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
  b.stx(kR9, kIptParamProto, kR2, MemSize::kU8);
  b.st(kR9, kIptParamHook, kIptHookForward, MemSize::kU8);
  b.st(kR9, kIptParamSport, 0, MemSize::kU16);
  b.st(kR9, kIptParamDport, 0, MemSize::kU16);
  if (needs_ports) {
    b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
    b.jeq(kR2, 6, b.scoped("parse_ports"));
    b.jne(kR2, 17, b.scoped("ports_done"));
    b.label(b.scoped("parse_ports"));
    b.mov_reg(kR2, kR7);
    b.add(kR2, kOffL4 + 4);
    b.jgt_reg(kR2, kR8, "punt");
    b.ldx(kR2, kR7, kOffL4, MemSize::kU16);
    b.be16(kR2);
    b.stx(kR9, kIptParamSport, kR2, MemSize::kU16);
    b.ldx(kR2, kR7, kOffL4 + 2, MemSize::kU16);
    b.be16(kR2);
    b.stx(kR9, kIptParamDport, kR2, MemSize::kU16);
    b.label(b.scoped("ports_done"));
  }
  b.ldx(kR2, kR6, kCtxIfindex, MemSize::kU64);
  b.stx(kR9, kIptParamInIf, kR2, MemSize::kU32);
  b.st(kR9, kIptParamOutIf, 0, MemSize::kU32);

  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperIptLookup);
  b.jeq(kR0, static_cast<std::int64_t>(kIptVerdictDrop), "drop");
  b.jeq(kR0, static_cast<std::int64_t>(kIptVerdictPunt), "punt");
}

namespace {
// Incrementally patches the IPv4 header checksum for a rewritten 32-bit
// address at packet offset `addr_off`, then stores the new address.
// In: r9 = ct params (rewrite_addr at kCtParamRewriteAddr). Clobbers r1-r5.
// RFC 1624 eqn 3: HC' = ~(~HC + ~m + m'), word by word.
void emit_addr_rewrite(ProgramBuilder& b, std::int32_t addr_off) {
  // Old address words (as big-endian 16-bit values).
  b.ldx(kR3, kR7, addr_off, MemSize::kU16);
  b.be16(kR3);
  b.ldx(kR4, kR7, addr_off + 2, MemSize::kU16);
  b.be16(kR4);
  // New address (host order) from the helper result.
  b.ldx(kR5, kR9, kCtParamRewriteAddr, MemSize::kU32);

  // r2 = ~csum
  b.ldx(kR2, kR7, kOffIpCsum, MemSize::kU16);
  b.be16(kR2);
  b.mov(kR1, 0xffff);
  b.sub_reg(kR1, kR2);
  b.mov_reg(kR2, kR1);
  // + ~old_w0 + ~old_w1
  b.mov(kR1, 0xffff);
  b.sub_reg(kR1, kR3);
  b.add_reg(kR2, kR1);
  b.mov(kR1, 0xffff);
  b.sub_reg(kR1, kR4);
  b.add_reg(kR2, kR1);
  // + new_w0 + new_w1
  b.mov_reg(kR1, kR5);
  b.rsh(kR1, 16);
  b.add_reg(kR2, kR1);
  b.mov_reg(kR1, kR5);
  b.and_(kR1, 0xffff);
  b.add_reg(kR2, kR1);
  // fold twice
  for (int i = 0; i < 2; ++i) {
    b.mov_reg(kR1, kR2);
    b.rsh(kR1, 16);
    b.and_(kR2, 0xffff);
    b.add_reg(kR2, kR1);
  }
  // csum' = ~acc
  b.mov(kR1, 0xffff);
  b.sub_reg(kR1, kR2);
  b.mov_reg(kR2, kR1);
  b.be16(kR2);
  b.stx(kR7, kOffIpCsum, kR2, MemSize::kU16);
  // Store the new address (big-endian on the wire).
  b.mov_reg(kR1, kR5);
  b.be32(kR1);
  b.stx(kR7, addr_off, kR1, MemSize::kU32);
}
}  // namespace

void FpmLibrary::emit_loadbalance(ebpf::ProgramBuilder& b,
                                  const util::Json& conf) {
  b.new_scope();
  const std::string done = b.scoped("lb_done");
  // Non-IPv4 / fragments / short frames: not load-balancer subjects; they
  // continue to the next FPM, whose own checks punt what it cannot handle.
  b.ldx(kR2, kR7, kOffEthType, MemSize::kU16);
  b.be16(kR2);
  b.jne(kR2, 0x0800, done);
  b.mov_reg(kR2, kR7);
  b.add(kR2, kOffL4 + 4);
  b.jgt_reg(kR2, kR8, done);
  b.ldx(kR2, kR7, kOffIp, MemSize::kU8);
  b.jne(kR2, 0x45, done);
  b.ldx(kR2, kR7, kOffIpFrag, MemSize::kU16);
  b.be16(kR2);
  b.and_(kR2, 0x3fff);
  b.jne(kR2, 0, done);

  // Conntrack lookup.
  b.mov_reg(kR9, kR10);
  b.add(kR9, kParamBase + 64);
  b.ldx(kR2, kR7, kOffIpSrc, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kCtParamSrc, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffIpDst, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kCtParamDst, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
  b.stx(kR9, kCtParamProto, kR2, MemSize::kU8);
  b.ldx(kR2, kR7, kOffL4, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR9, kCtParamSport, kR2, MemSize::kU16);
  b.ldx(kR2, kR7, kOffL4 + 2, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR9, kCtParamDport, kR2, MemSize::kU16);
  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperCtLookup);
  b.jeq(kR0, static_cast<std::int64_t>(kCtLkupFound),
        b.scoped("lb_tracked"));

  // Conntrack miss. If (and only if) the destination is one of the
  // configured virtual services, the flow is NEW and needs slow-path
  // scheduling; all other traffic simply is not load-balancer business.
  // The VIP endpoints are synthesis-time constants (specialization).
  {
    const util::Json& services = conf.at("services");
    b.ldx(kR4, kR7, kOffIpDst, MemSize::kU32);
    b.be32(kR4);
    b.ldx(kR5, kR7, kOffL4 + 2, MemSize::kU16);
    b.be16(kR5);
    b.ldx(kR3, kR7, kOffIpProto, MemSize::kU8);
    for (std::size_t i = 0; i < services.size(); ++i) {
      const util::Json& svc = services.at(i);
      auto vip = net::Ipv4Addr::parse(svc.at("vip").as_string());
      if (!vip.ok()) continue;
      std::string next = b.scoped("lb_svc" + std::to_string(i));
      b.jne(kR4, vip->value(), next);
      b.jne(kR5, svc.at("port").as_int(), next);
      b.jne(kR3, svc.at("proto").as_int(), next);
      b.ja("punt");  // NEW flow to this VIP: schedule in the slow path
      b.label(next);
    }
    b.ja(done);  // untracked non-VIP traffic: continue down the fast path
  }

  b.label(b.scoped("lb_tracked"));
  b.ldx(kR2, kR9, kCtParamFlags, MemSize::kU8);
  b.jset(kR2, kCtFlagRewrite, b.scoped("lb_rewrite"));
  b.ja(done);  // plain tracked flow, no NAT

  b.label(b.scoped("lb_rewrite"));
  b.ldx(kR2, kR9, kCtParamFlags, MemSize::kU8);
  b.and_(kR2, kCtFlagReply);
  b.jne(kR2, 0, b.scoped("lb_reply"));
  // Original direction: DNAT destination toward the backend.
  emit_addr_rewrite(b, kOffIpDst);
  b.ldx(kR2, kR9, kCtParamRewritePort, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR7, kOffL4 + 2, kR2, MemSize::kU16);
  b.ja(done);

  b.label(b.scoped("lb_reply"));
  // Reply direction: un-NAT source back to the VIP.
  emit_addr_rewrite(b, kOffIpSrc);
  b.ldx(kR2, kR9, kCtParamRewritePort, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR7, kOffL4, kR2, MemSize::kU16);

  b.label(done);
}

void FpmLibrary::emit_conntrack_gate(ebpf::ProgramBuilder& b) {
  b.new_scope();
  // Requires an IPv4+L4 packet; conservative checks then bpf_ct_lookup.
  b.ldx(kR2, kR7, kOffEthType, MemSize::kU16);
  b.be16(kR2);
  b.jne(kR2, 0x0800, "punt");
  b.mov_reg(kR2, kR7);
  b.add(kR2, kOffL4 + 4);
  b.jgt_reg(kR2, kR8, "punt");
  b.ldx(kR2, kR7, kOffIp, MemSize::kU8);
  b.jne(kR2, 0x45, "punt");

  b.mov_reg(kR9, kR10);
  b.add(kR9, kParamBase + 64);
  b.ldx(kR2, kR7, kOffIpSrc, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kCtParamSrc, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffIpDst, MemSize::kU32);
  b.be32(kR2);
  b.stx(kR9, kCtParamDst, kR2, MemSize::kU32);
  b.ldx(kR2, kR7, kOffIpProto, MemSize::kU8);
  b.stx(kR9, kCtParamProto, kR2, MemSize::kU8);
  b.ldx(kR2, kR7, kOffL4, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR9, kCtParamSport, kR2, MemSize::kU16);
  b.ldx(kR2, kR7, kOffL4 + 2, MemSize::kU16);
  b.be16(kR2);
  b.stx(kR9, kCtParamDport, kR2, MemSize::kU16);

  b.mov_reg(kR1, kR6);
  b.mov_reg(kR2, kR9);
  b.call(kHelperCtLookup);
  // Flows unknown to conntrack are new: the slow path creates the entry
  // (and runs scheduling for the load balancer); established flows continue
  // on the fast path.
  b.jne(kR0, static_cast<std::int64_t>(kCtLkupFound), "punt");
}

void FpmLibrary::emit_trivial_nf(ebpf::ProgramBuilder& b, int index) {
  b.new_scope();
  // One packet load + a little ALU, like a minimal monitoring NF.
  b.ldx(kR2, kR7, kOffEthType, MemSize::kU16);
  b.add(kR2, index);
  b.and_(kR2, 0xffff);
}

}  // namespace linuxfp::core
