#include "core/guard.h"

#include <algorithm>
#include <cstring>

#include "engine/rss.h"
#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::core {

namespace {

// Cookie layout: [unit+1 : 8][cpu : 8][seq+1 : 48]. Both biased fields keep
// a live cookie from ever being zero (zero means "empty slot").
constexpr std::uint64_t cookie_of(std::uint8_t unit, unsigned cpu,
                                  std::uint64_t seq) {
  return (static_cast<std::uint64_t>(unit + 1) << 56) |
         (static_cast<std::uint64_t>(cpu & 0xff) << 48) |
         ((seq + 1) & 0xffff'ffff'ffffULL);
}

// Finalizer-style 32-bit mixer (lowbias32). The sampler must not reuse the
// raw rss_hash: the RETA keys off its low 7 bits, so `hash % K` would make
// the sample set correlate with queue steering (entire queues all-sampled or
// never-sampled). Mixing decorrelates the two consumers of the same hash.
std::uint32_t mix32(std::uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

}  // namespace

const char* guard_mode_name(GuardMode mode) {
  switch (mode) {
    case GuardMode::kShadow: return "shadow";
    case GuardMode::kActive: return "active";
    case GuardMode::kQuarantined: return "quarantined";
    case GuardMode::kHalfOpen: return "half_open";
  }
  return "?";
}

const char* trip_reason_name(TripReason reason) {
  switch (reason) {
    case TripReason::kNone: return "none";
    case TripReason::kDivergence: return "divergence";
    case TripReason::kAbortRate: return "abort_rate";
    case TripReason::kForced: return "forced";
  }
  return "?";
}

// ---------------------------------------------------------------- GuardUnit

GuardUnit::GuardUnit(EquivalenceGuard& guard, std::uint8_t id,
                     std::string device, ebpf::HookType hook,
                     ebpf::Attachment* attachment)
    : guard_(guard),
      id_(id),
      device_(std::move(device)),
      hook_(hook),
      att_(attachment) {
  prepare_cpus(1);  // inline (sim) path uses cpu 0 before any engine starts
}

void GuardUnit::prepare_cpus(unsigned n) {
  att_->prepare_cpus(n);
  const std::uint32_t depth = guard_.policy().expectation_slots;
  LFP_CHECK_MSG((depth & (depth - 1)) == 0, "expectation_slots: power of two");
  while (cpus_.size() < n) {
    auto cs = std::make_unique<CpuSlots>();
    cs->slots = std::vector<Slot>(depth);
    cpus_.push_back(std::move(cs));
  }
}

std::string GuardUnit::name() const { return "guard(" + att_->name() + ")"; }

// The kernel's inline datapath enters through run() (shadow captures arm on
// the kernel directly: same thread); the engine's workers enter through
// run_on_cpu() (the cookie rides in the packet and the slow-path thread
// adopts it). The two entry points are the inline/deferred discriminator.
GuardUnit::RunResult GuardUnit::run(net::Packet& pkt, int ingress_ifindex) {
  return dispatch(pkt, ingress_ifindex, 0, /*inline_path=*/true);
}

GuardUnit::RunResult GuardUnit::run_on_cpu(net::Packet& pkt,
                                           int ingress_ifindex, unsigned cpu) {
  return dispatch(pkt, ingress_ifindex, cpu, /*inline_path=*/false);
}

GuardUnit::RunResult GuardUnit::dispatch(net::Packet& pkt, int ingress_ifindex,
                                         unsigned cpu, bool inline_path) {
  switch (mode_.load(std::memory_order_acquire)) {
    case GuardMode::kQuarantined:
      // Breaker open: unconditional PASS before the flow-cache probe — the
      // datapath is the bare slow path the instant the CAS lands, even
      // before the controller swaps the PASS fallback program in.
      quarantine_passes_.fetch_add(1, std::memory_order_relaxed);
      return RunResult{};
    case GuardMode::kShadow:
    case GuardMode::kHalfOpen:
      return run_shadowed(pkt, ingress_ifindex, cpu, inline_path);
    case GuardMode::kActive:
      break;
  }
  const std::uint32_t k = guard_.policy().sample_every;
  if (k != 0 &&
      EquivalenceGuard::sampled_hash(engine::rss_hash_cached(pkt), k)) {
    sampled_.fetch_add(1, std::memory_order_relaxed);
    return run_shadowed(pkt, ingress_ifindex, cpu, inline_path);
  }
  RunResult r = att_->run_on_cpu(pkt, ingress_ifindex, cpu);
  note_abort_window(r.verdict == Verdict::kAborted);
  return r;
}

GuardUnit::RunResult GuardUnit::run_shadowed(net::Packet& pkt,
                                             int ingress_ifindex, unsigned cpu,
                                             bool inline_path) {
  LFP_CHECK_MSG(cpu < cpus_.size(), "guard: cpu beyond prepare_cpus");
  // The program may rewrite headers (MACs, TTL), so it runs on a copy; the
  // original continues down the slow path untouched and authoritative.
  net::Packet copy(pkt);
  RunResult r = att_->run_on_cpu(copy, ingress_ifindex, cpu);
  note_abort_window(r.verdict == Verdict::kAborted);
  shadow_runs_.fetch_add(1, std::memory_order_relaxed);

  CpuSlots& cs = *cpus_[cpu];
  const std::uint64_t seq = cs.next_seq++;
  Slot& slot = cs.slots[seq & (cs.slots.size() - 1)];
  if (slot.cookie.load(std::memory_order_relaxed) != 0) {
    // The previous occupant was never resolved (its packet tail-dropped in
    // the engine before reaching the slow path). Count and reclaim.
    stale_.fetch_add(1, std::memory_order_relaxed);
  }
  slot.verdict = r.verdict;
  slot.oif = r.verdict == Verdict::kTx ? ingress_ifindex : r.redirect_ifindex;
  slot.armed_ns = guard_.kernel().now_ns();
  slot.bytes.clear();
  if (r.verdict == Verdict::kTx || r.verdict == Verdict::kRedirect) {
    slot.bytes.assign(copy.data(), copy.data() + copy.size());
  }
  // Fault seam: corrupt the recorded expectation into one no slow path can
  // satisfy (a transmit out an impossible interface), modelling a synthesis
  // bug whose fast path misforwards. Datapath seam — tests may only arm it
  // on single-threaded runs (the injector is not thread-safe).
  if (util::FaultInjector::global().should_fail(util::kFaultGuardVerdict)) {
    slot.verdict = Verdict::kTx;
    slot.oif = -1;
    slot.bytes.clear();
  }
  const std::uint64_t cookie = cookie_of(id_, cpu, seq);
  slot.cookie.store(cookie, std::memory_order_release);

  if (inline_path) {
    if (!guard_.kernel().shadow_begin(cookie)) {
      // Nested rx (veth/loopback re-entry): capture unavailable, skip.
      slot.cookie.store(0, std::memory_order_relaxed);
      skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Engine path: the cookie rides with the packet; the slow-path thread
    // adopts it at rx_from_engine and resolves when the packet terminates.
    pkt.guard_cookie = cookie;
  }
  // PASS hands the packet to the stack; the shadow fast-path run's cycles
  // are still charged — that cost IS the guard's overhead.
  return RunResult{Verdict::kPass, 0, r.cycles};
}

void GuardUnit::resolve(unsigned cpu, std::uint64_t cookie,
                        const kern::RxSummary& summary,
                        const std::vector<kern::ShadowEmission>& emissions) {
  if (cpu >= cpus_.size()) return;
  CpuSlots& cs = *cpus_[cpu];
  Slot& slot = cs.slots[((cookie & 0xffff'ffff'ffffULL) - 1) &
                        (cs.slots.size() - 1)];
  if (slot.cookie.load(std::memory_order_acquire) != cookie) {
    stale_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Verdict verdict = slot.verdict;
  const int oif = slot.oif;
  // The slot is only reclaimed by its owning worker a full ring-depth later,
  // so reading the payload after the acquire and then clearing is safe.
  const std::vector<std::uint8_t> bytes = slot.bytes;
  slot.cookie.store(0, std::memory_order_release);

  bool match = true;
  switch (verdict) {
    case Verdict::kPass:
    case Verdict::kAborted:
      // The fast path deferred to the stack — trivially equivalent.
      break;
    case Verdict::kUserspace:
      // AF_XDP delivery has no slow-path analogue to compare against; the
      // guard is not meant to front XSK workloads.
      skipped_.fetch_add(1, std::memory_order_relaxed);
      return;
    case Verdict::kDrop:
      if (summary.drop == kern::Drop::kNeighPending) {
        // Queued awaiting ARP is neither forwarded nor dropped; comparing
        // would raise false divergences during resolution windows.
        skipped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      match = summary.drop != kern::Drop::kNone;
      break;
    case Verdict::kTx:
    case Verdict::kRedirect: {
      if (summary.drop == kern::Drop::kNeighPending) {
        skipped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      match = false;
      for (const kern::ShadowEmission& e : emissions) {
        if (e.ifindex != oif) continue;
        if (e.pkt.size() == bytes.size() &&
            std::memcmp(e.pkt.data(), bytes.data(), bytes.size()) == 0) {
          match = true;
          break;
        }
      }
      break;
    }
  }
  compares_.fetch_add(1, std::memory_order_relaxed);
  if (match) {
    note_clean();
    return;
  }
  divergences_.fetch_add(1, std::memory_order_relaxed);
  LFP_WARN("guard") << device_ << ": fast path diverged from slow path "
                    << "(fast verdict " << static_cast<int>(verdict)
                    << " oif " << oif << ", slow drop "
                    << kern::drop_name(summary.drop) << ", " << emissions.size()
                    << " slow emissions)";
  trip(TripReason::kDivergence, guard_.kernel().now_ns());
}

void GuardUnit::note_clean() {
  const GuardMode mode = mode_.load(std::memory_order_acquire);
  if (mode == GuardMode::kShadow) {
    const std::uint32_t streak =
        clean_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= guard_.policy().canary_packets) {
      GuardMode expected = GuardMode::kShadow;
      if (mode_.compare_exchange_strong(expected, GuardMode::kActive,
                                        std::memory_order_acq_rel)) {
        clean_streak_.store(0, std::memory_order_relaxed);
        promotions_.fetch_add(1, std::memory_order_relaxed);
        LFP_INFO("guard") << device_ << ": canary promoted after " << streak
                          << " clean compares";
      }
    }
  } else if (mode == GuardMode::kHalfOpen) {
    const std::uint32_t streak =
        clean_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak >= guard_.policy().half_open_packets) {
      GuardMode expected = GuardMode::kHalfOpen;
      if (mode_.compare_exchange_strong(expected, GuardMode::kActive,
                                        std::memory_order_acq_rel)) {
        clean_streak_.store(0, std::memory_order_relaxed);
        consecutive_trips_.store(0, std::memory_order_relaxed);
        trip_reason_.store(TripReason::kNone, std::memory_order_relaxed);
        closes_.fetch_add(1, std::memory_order_relaxed);
        LFP_INFO("guard") << device_ << ": breaker closed after " << streak
                          << " clean half-open probes";
      }
    }
  }
}

void GuardUnit::note_abort_window(bool aborted) {
  const std::uint32_t window = guard_.policy().abort_window;
  if (window == 0) return;
  if (aborted) win_aborts_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t runs =
      win_runs_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (runs < window) return;
  const std::uint32_t aborts = win_aborts_.load(std::memory_order_relaxed);
  win_runs_.store(0, std::memory_order_relaxed);
  win_aborts_.store(0, std::memory_order_relaxed);
  if (static_cast<double>(aborts) >
      guard_.policy().abort_rate_threshold * static_cast<double>(runs)) {
    LFP_WARN("guard") << device_ << ": abort rate " << aborts << "/" << runs
                      << " breached the breaker threshold";
    trip(TripReason::kAbortRate, guard_.kernel().now_ns());
  }
}

void GuardUnit::trip(TripReason reason, std::uint64_t now_ns) {
  GuardMode mode = mode_.load(std::memory_order_acquire);
  for (;;) {
    if (mode == GuardMode::kQuarantined) return;  // already open
    if (mode_.compare_exchange_weak(mode, GuardMode::kQuarantined,
                                    std::memory_order_acq_rel)) {
      break;
    }
  }
  if (mode == GuardMode::kShadow) {
    canary_rejections_.fetch_add(1, std::memory_order_relaxed);
  }
  trip_reason_.store(reason, std::memory_order_relaxed);
  last_trip_ns_.store(now_ns, std::memory_order_relaxed);
  clean_streak_.store(0, std::memory_order_relaxed);
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  pending_quarantine_.store(true, std::memory_order_release);
  LFP_WARN("guard") << device_ << ": breaker tripped ("
                    << trip_reason_name(reason) << ") from "
                    << guard_mode_name(mode) << "; quarantined";
}

GuardUnitStats GuardUnit::stats() const {
  GuardUnitStats s;
  s.shadow_runs = shadow_runs_.load(std::memory_order_relaxed);
  s.compares = compares_.load(std::memory_order_relaxed);
  s.divergences = divergences_.load(std::memory_order_relaxed);
  s.skipped = skipped_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.sampled = sampled_.load(std::memory_order_relaxed);
  s.quarantine_passes = quarantine_passes_.load(std::memory_order_relaxed);
  s.promotions = promotions_.load(std::memory_order_relaxed);
  s.canary_rejections = canary_rejections_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.half_open_probes = half_open_probes_.load(std::memory_order_relaxed);
  s.closes = closes_.load(std::memory_order_relaxed);
  return s;
}

// --------------------------------------------------------- EquivalenceGuard

EquivalenceGuard::EquivalenceGuard(kern::Kernel& kernel, GuardPolicy policy)
    : kernel_(kernel),
      policy_(policy),
      reprobe_rng_(policy.reprobe_jitter_seed) {
  if (policy_.expectation_slots == 0 ||
      (policy_.expectation_slots & (policy_.expectation_slots - 1)) != 0) {
    policy_.expectation_slots = 4096;
  }
  kernel_.set_shadow_observer(this);
}

EquivalenceGuard::~EquivalenceGuard() {
  if (kernel_.shadow_observer() == this) kernel_.set_shadow_observer(nullptr);
}

bool EquivalenceGuard::sampled_hash(std::uint32_t rss_hash, std::uint32_t k) {
  if (k == 0) return false;
  return mix32(rss_hash) % k == 0;
}

kern::PacketProgram* EquivalenceGuard::attach_unit(
    const std::string& device, ebpf::HookType hook,
    ebpf::Attachment* attachment) {
  const auto key = std::make_pair(device, static_cast<int>(hook));
  auto it = units_.find(key);
  if (it != units_.end()) {
    it->second->att_ = attachment;
    return it->second.get();
  }
  const std::size_t id = units_.size();
  LFP_CHECK_MSG(id < kMaxUnits, "guard: too many guarded hooks");
  auto unit = std::make_unique<GuardUnit>(*this, static_cast<std::uint8_t>(id),
                                          device, hook, attachment);
  GuardUnit* raw = unit.get();
  units_.emplace(key, std::move(unit));
  by_id_[id].store(raw, std::memory_order_release);
  return raw;
}

GuardUnit* EquivalenceGuard::unit(const std::string& device,
                                  ebpf::HookType hook) {
  auto it = units_.find(std::make_pair(device, static_cast<int>(hook)));
  return it == units_.end() ? nullptr : it->second.get();
}

std::vector<GuardUnit*> EquivalenceGuard::units() {
  std::vector<GuardUnit*> out;
  out.reserve(units_.size());
  for (auto& [key, u] : units_) out.push_back(u.get());
  return out;
}

void EquivalenceGuard::on_swap(const std::string& device, ebpf::HookType hook,
                               std::uint64_t now_ns) {
  (void)now_ns;
  GuardUnit* u = unit(device, hook);
  if (u == nullptr) return;
  const GuardMode mode = u->mode_.load(std::memory_order_acquire);
  u->clean_streak_.store(0, std::memory_order_relaxed);
  u->win_runs_.store(0, std::memory_order_relaxed);
  u->win_aborts_.store(0, std::memory_order_relaxed);
  if (mode == GuardMode::kQuarantined) {
    // The re-probe redeploy landed: probe the fresh program in half-open
    // shadow mode — the slow path still serves until the streak closes it.
    u->pending_quarantine_.store(false, std::memory_order_relaxed);
    u->reprobe_at_ns_ = 0;
    u->half_open_probes_.fetch_add(1, std::memory_order_relaxed);
    u->mode_.store(GuardMode::kHalfOpen, std::memory_order_release);
    LFP_INFO("guard") << device << ": redeploy entered half-open probing";
  } else {
    // New or re-synthesized program: restart the canary from scratch.
    u->mode_.store(GuardMode::kShadow, std::memory_order_release);
  }
}

void EquivalenceGuard::on_degrade(const std::string& device,
                                  ebpf::HookType hook) {
  GuardUnit* u = unit(device, hook);
  if (u == nullptr) return;
  if (u->mode_.load(std::memory_order_acquire) == GuardMode::kQuarantined) {
    return;  // quarantine IS a degrade; keep breaker state
  }
  // Withdrawal or failure-path degrade: the PASS fallback needs no guarding,
  // and whatever deploys next must re-canary.
  u->clean_streak_.store(0, std::memory_order_relaxed);
  u->mode_.store(GuardMode::kShadow, std::memory_order_release);
}

std::uint64_t EquivalenceGuard::reprobe_delay_ns(
    std::uint32_t consecutive_trips) {
  std::uint64_t delay = policy_.reprobe_base_ns;
  for (std::uint32_t i = 1; i < consecutive_trips && delay < policy_.reprobe_max_ns;
       ++i) {
    delay *= 2;
  }
  delay = std::min(delay, policy_.reprobe_max_ns);
  const double jitter = policy_.reprobe_jitter;
  if (jitter > 0.0) {
    const double f = 1.0 + jitter * (2.0 * reprobe_rng_.next_double() - 1.0);
    delay = static_cast<std::uint64_t>(static_cast<double>(delay) * f);
  }
  return std::max<std::uint64_t>(delay, 1);
}

GuardMaintenance EquivalenceGuard::maintain(std::uint64_t now_ns,
                                            const QuarantineFn& quarantine_cb) {
  GuardMaintenance m;
  // Control-plane fault seam: force-trip the first closed breaker, modelling
  // an operator/monitoring-driven trip racing the deploy loop.
  if (util::FaultInjector::global().should_fail(util::kFaultGuardBreaker)) {
    for (auto& [key, u] : units_) {
      const GuardMode mode = u->mode_.load(std::memory_order_acquire);
      if (mode == GuardMode::kActive || mode == GuardMode::kShadow ||
          mode == GuardMode::kHalfOpen) {
        u->trip(TripReason::kForced, now_ns);
        break;
      }
    }
  }
  for (auto& [key, u] : units_) {
    if (u->pending_quarantine_.exchange(false, std::memory_order_acq_rel)) {
      // Complete the quarantine through the deployer: park the hook on the
      // PASS fallback (bumping the flow epoch, so cached verdicts flush) and
      // schedule a re-probe with bounded jittered backoff.
      if (quarantine_cb) quarantine_cb(u->device_, u->hook_);
      const std::uint32_t trips =
          u->consecutive_trips_.fetch_add(1, std::memory_order_relaxed) + 1;
      u->reprobe_at_ns_ = now_ns + reprobe_delay_ns(trips);
      m.quarantined_devices.push_back(u->device_);
      LFP_INFO("guard") << u->device_ << ": quarantine completed; re-probe in "
                        << (u->reprobe_at_ns_ - now_ns) / 1000000 << " ms";
    }
    if (u->mode_.load(std::memory_order_acquire) == GuardMode::kQuarantined &&
        u->reprobe_at_ns_ != 0 && now_ns >= u->reprobe_at_ns_) {
      m.reprobe_due = true;
    }
  }
  return m;
}

std::uint64_t EquivalenceGuard::next_reprobe_ns() const {
  std::uint64_t next = 0;
  for (const auto& [key, u] : units_) {
    if (u->reprobe_at_ns_ == 0) continue;
    if (next == 0 || u->reprobe_at_ns_ < next) next = u->reprobe_at_ns_;
  }
  return next;
}

GuardTotals EquivalenceGuard::totals() const {
  GuardTotals t;
  for (const auto& [key, u] : units_) {
    const GuardUnitStats s = u->stats();
    t.divergences += s.divergences;
    t.quarantines += s.quarantines;
    t.promotions += s.promotions;
    t.canary_rejections += s.canary_rejections;
    t.half_open_probes += s.half_open_probes;
    t.closes += s.closes;
    t.compares += s.compares;
    t.sampled += s.sampled;
    ++t.units;
    const GuardMode mode = u->mode_.load(std::memory_order_acquire);
    if (mode != GuardMode::kActive) ++t.units_open;
    if (mode == GuardMode::kQuarantined || mode == GuardMode::kHalfOpen) {
      ++t.units_unhealthy;
    }
  }
  return t;
}

void EquivalenceGuard::on_shadow_resolved(
    std::uint64_t cookie, const kern::RxSummary& summary,
    std::vector<kern::ShadowEmission>&& emissions) {
  const std::size_t id = static_cast<std::size_t>(cookie >> 56);
  if (id == 0 || id > kMaxUnits) return;
  GuardUnit* u = by_id_[id - 1].load(std::memory_order_acquire);
  if (u == nullptr) return;
  u->resolve(static_cast<unsigned>((cookie >> 48) & 0xff), cookie, summary,
             emissions);
}

}  // namespace linuxfp::core
