#include "core/deployer.h"

#include <set>

#include "ebpf/builder.h"
#include "util/fault.h"
#include "util/logging.h"

namespace linuxfp::core {

namespace {
// Reaction-time model for the toolchain stages this reproduction replaces
// with in-process work: fork/exec of clang on the rendered C, ELF link, and
// libbpf load/attach syscalls. Calibrated against paper Table VI.
double modeled_compile_seconds(std::size_t programs, std::size_t insns,
                               bool has_filter) {
  double t = 0.42;                                // clang startup + template IO
  t += 0.0012 * static_cast<double>(insns);       // codegen/verify scaling
  t += 0.05 * static_cast<double>(programs);      // per-object load/attach
  if (has_filter) t += 0.38;                      // libiptc full-table walk
  return t;
}
}  // namespace

void Deployer::set_metrics(util::MetricsRegistry* registry) {
  metrics_ = registry;
  for (auto& [key, slot] : attachments_) {
    if (slot.attachment) slot.attachment->set_metrics(registry);
  }
}

void Deployer::set_flow_cache(bool on) {
  flow_cache_ = on;
  for (auto& [key, slot] : attachments_) {
    if (slot.attachment) slot.attachment->set_flow_cache(on);
  }
}

void Deployer::set_exec_engine(ebpf::ExecEngine engine) {
  exec_engine_ = engine;
  for (auto& [key, slot] : attachments_) {
    if (slot.attachment) slot.attachment->set_exec_engine(engine);
  }
}

Deployer::JitSummary Deployer::jit_summary() const {
  JitSummary total;
  for (const auto& [key, slot] : attachments_) {
    if (!slot.attachment) continue;
    total.translated += slot.attachment->jit_translated();
    total.untranslatable += slot.attachment->jit_untranslatable();
    auto stats = slot.attachment->stats();
    total.runs += stats.jit_runs;
    total.fallbacks += stats.jit_fallbacks;
  }
  return total;
}

engine::FlowCacheStats Deployer::flow_cache_stats() const {
  engine::FlowCacheStats total;
  for (const auto& [key, slot] : attachments_) {
    if (slot.attachment) total += slot.attachment->flow_cache_stats();
  }
  return total;
}

util::Result<Deployer::Slot*> Deployer::slot_for(const std::string& device,
                                                 ebpf::HookType hook) {
  auto key = std::make_pair(device, static_cast<int>(hook));
  auto it = attachments_.find(key);
  if (it != attachments_.end()) return &it->second;
  // Creating the slot is the fallible part of attach: the dispatcher swap-in
  // (XDP_FLAGS_REPLACE-style) can be rejected by the driver.
  if (auto st = util::FaultInjector::global().check(util::kFaultDeployerAttach);
      !st.ok()) {
    return st.error();
  }
  Slot slot;
  slot.device = device;
  slot.hook = hook;
  slot.attachment = std::make_unique<ebpf::Attachment>(
      "lfp@" + device, hook, kernel_, helpers_);
  if (metrics_) slot.attachment->set_metrics(metrics_);
  if (flow_cache_) slot.attachment->set_flow_cache(true);
  slot.attachment->set_exec_engine(exec_engine_);
  slot.attachment->enable_dispatcher();
  // With a guard, the hook runs the guard's decorator unit, which fronts the
  // attachment with the canary/sampling/breaker state machine.
  kern::PacketProgram* hook_prog =
      guard_ ? guard_->attach_unit(device, hook, slot.attachment.get())
             : static_cast<kern::PacketProgram*>(slot.attachment.get());
  auto st = ebpf::attach_to_device(kernel_, device, hook, hook_prog);
  // On attach failure nothing was installed on the device; dropping the
  // local Slot releases everything the attempt created.
  if (!st.ok()) return st.error();
  return &attachments_.emplace(key, std::move(slot)).first->second;
}

void Deployer::degrade_to_pass(Slot& slot) {
  // Terminal fallback: park the dispatcher on a PASS program so every packet
  // takes the slow path. Must be infallible — it is what every other failure
  // degrades onto — hence the fault suppression (a prog-array update of a
  // loaded program cannot transiently fail in the kernel either).
  util::FaultSuppress suppress;
  if (!slot.has_pass_prog) {
    ebpf::ProgramBuilder b("lfp_pass", slot.attachment->hook());
    b.ret(ebpf::kActPass);
    auto prog = b.build();
    LFP_CHECK(prog.ok());
    auto id = slot.attachment->load(std::move(prog).take());
    LFP_CHECK(id.ok());
    slot.pass_prog = id.value();
    slot.has_pass_prog = true;
  }
  if (slot.attachment->active_prog_id() != slot.pass_prog) {
    auto st = slot.attachment->swap(slot.pass_prog);
    LFP_CHECK_MSG(st.ok(), "degrade-to-pass swap failed");
  }
  // A quarantined unit stays quarantined (this degrade IS its completion);
  // any other mode resets so the next real deploy re-canaries.
  if (guard_) guard_->on_degrade(slot.device, slot.hook);
}

void Deployer::quarantine(const std::string& device, ebpf::HookType hook) {
  auto it = attachments_.find({device, static_cast<int>(hook)});
  if (it == attachments_.end()) return;
  degrade_to_pass(it->second);
}

util::Status Deployer::deploy_one(const SynthesisResult& result,
                                  DeployReport& report) {
  auto slot_r = slot_for(result.device, result.hook);
  if (!slot_r.ok()) return slot_r.error();
  Slot& slot = **slot_r;
  ebpf::Attachment& att = *slot.attachment;

  // Transaction step 1: load every program of the object; all-or-nothing
  // (load_object frees everything it created on failure).
  auto obj = att.load_object({}, result.programs);
  if (!obj.ok()) {
    ++report.rollbacks;
    ++rollbacks_;
    return obj.error();
  }
  const std::vector<std::uint32_t>& ids = obj->prog_ids;

  // Transaction step 2: wire chain programs (index base+i for i >= 1).
  // Tail-call chains occupy fresh prog-array indices each deploy so the old
  // chain keeps working until the entry swap. The synthesizer already
  // encoded tail-call targets relative to result.tail_call_base.
  std::uint32_t base = result.tail_call_base;
  ebpf::Map* prog_array = att.maps().get(0);
  auto rollback = [&](std::size_t wired) {
    // Un-wire what we wired (fresh indices, so erasing restores the exact
    // pre-transaction map state), then unload the object. Fault-suppressed:
    // rollback only removes state and cannot fail.
    util::FaultSuppress suppress;
    for (std::size_t i = 1; i <= wired; ++i) {
      std::uint32_t index = base + static_cast<std::uint32_t>(i);
      prog_array->erase(reinterpret_cast<const std::uint8_t*>(&index));
    }
    att.unload_object(*obj);
    ++report.rollbacks;
    ++rollbacks_;
  };
  for (std::size_t i = 1; i < ids.size(); ++i) {
    auto st = prog_array->set_prog(base + static_cast<std::uint32_t>(i),
                                   ids[i]);
    if (!st.ok()) {
      rollback(i - 1);
      return st;
    }
  }

  // Transaction step 3: atomic activation. Until this single prog-array
  // update commits, packets still run the previous program.
  auto st = att.swap(ids[0]);
  if (!st.ok()) {
    rollback(ids.empty() ? 0 : ids.size() - 1);
    return st;
  }

  slot.next_chain_index = std::max(
      slot.next_chain_index,
      base + static_cast<std::uint32_t>(ids.size() ? ids.size() : 1));
  slot.has_deployed = true;
  if (guard_) guard_->on_swap(result.device, result.hook, kernel_.now_ns());
  for (const ebpf::Program& prog : result.programs) {
    report.total_insns += prog.size();
    ++report.programs;
  }
  return {};
}

DeployReport Deployer::deploy(const std::vector<SynthesisResult>& results,
                              bool old_is_current,
                              const std::set<std::pair<std::string, int>>*
                                  coverage) {
  DeployReport report;
  bool has_filter = false;
  // Devices covered by a synthesis result — including ones whose deploy
  // failed — must not be withdrawn below; withdrawal is only for devices no
  // graph wants anymore. A delta deploy passes the full desired coverage
  // explicitly, since its `results` hold only the changed graphs.
  std::set<std::pair<std::string, int>> covered;
  if (coverage) covered = *coverage;
  for (const SynthesisResult& r : results) {
    covered.insert({r.device, static_cast<int>(r.hook)});
    auto st = deploy_one(r, report);
    if (!st.ok()) {
      report.failures.push_back(DeviceFailure{r.device, st.error()});
      auto it = attachments_.find({r.device, static_cast<int>(r.hook)});
      bool keep_old =
          old_is_current && it != attachments_.end() && it->second.has_deployed;
      LFP_WARN("deployer") << "deploy failed for " << r.device << ": "
                           << st.error().message
                           << (keep_old ? " — keeping current program"
                                        : " — degrading to slow path");
      // When the structural signature changed, the previous program is stale
      // (deploys only run on signature changes), so coherence demands the
      // bare slow path until a retry succeeds. On a forced redeploy with an
      // unchanged signature the old program still matches the configuration
      // and keeps serving the fast path.
      if (!keep_old && it != attachments_.end()) degrade_to_pass(it->second);
      continue;
    }
    ++report.devices;
    for (const std::string& fpm : r.fpms) {
      if (fpm == "filter") has_filter = true;
      if (metrics_) util::bump(metrics_->counter("fpm." + fpm + ".deployed"));
    }
  }
  // Withdraw acceleration from devices no longer covered by any graph.
  for (auto& [key, slot] : attachments_) {
    if (covered.count(key)) continue;
    degrade_to_pass(slot);
  }
  ++deploys_;
  report.modeled_compile_seconds =
      modeled_compile_seconds(report.programs, report.total_insns, has_filter);
  return report;
}

ebpf::Attachment* Deployer::attachment(const std::string& device,
                                       ebpf::HookType hook) {
  auto it = attachments_.find({device, static_cast<int>(hook)});
  return it == attachments_.end() ? nullptr : it->second.attachment.get();
}

std::uint32_t Deployer::next_chain_index(const std::string& device,
                                         ebpf::HookType hook) const {
  auto it = attachments_.find({device, static_cast<int>(hook)});
  return it == attachments_.end() ? 1 : it->second.next_chain_index;
}

}  // namespace linuxfp::core
