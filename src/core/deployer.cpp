#include "core/deployer.h"

#include <set>

#include "ebpf/builder.h"
#include "util/logging.h"

namespace linuxfp::core {

namespace {
// Reaction-time model for the toolchain stages this reproduction replaces
// with in-process work: fork/exec of clang on the rendered C, ELF link, and
// libbpf load/attach syscalls. Calibrated against paper Table VI.
double modeled_compile_seconds(std::size_t programs, std::size_t insns,
                               bool has_filter) {
  double t = 0.42;                                // clang startup + template IO
  t += 0.0012 * static_cast<double>(insns);       // codegen/verify scaling
  t += 0.05 * static_cast<double>(programs);      // per-object load/attach
  if (has_filter) t += 0.38;                      // libiptc full-table walk
  return t;
}
}  // namespace

Deployer::Slot& Deployer::slot_for(const std::string& device,
                                   ebpf::HookType hook) {
  auto key = std::make_pair(device, static_cast<int>(hook));
  auto it = attachments_.find(key);
  if (it != attachments_.end()) return it->second;
  Slot slot;
  slot.attachment = std::make_unique<ebpf::Attachment>(
      "lfp@" + device, hook, kernel_, helpers_);
  slot.attachment->enable_dispatcher();
  auto st = ebpf::attach_to_device(kernel_, device, hook,
                                   slot.attachment.get());
  LFP_CHECK_MSG(st.ok(), "attach failed");
  return attachments_.emplace(key, std::move(slot)).first->second;
}

util::Status Deployer::deploy_one(const SynthesisResult& result,
                                  DeployReport& report) {
  Slot& slot = slot_for(result.device, result.hook);
  ebpf::Attachment& att = *slot.attachment;

  // Tail-call chains occupy fresh prog-array indices each deploy so the old
  // chain keeps working until the entry swap. The synthesizer already
  // encoded tail-call targets relative to result.tail_call_base.
  std::uint32_t base = result.tail_call_base;
  std::vector<std::uint32_t> ids;
  for (const ebpf::Program& prog : result.programs) {
    auto id = att.load(prog);
    if (!id.ok()) return id.error();
    ids.push_back(id.value());
    report.total_insns += prog.size();
    ++report.programs;
  }
  // Wire chain programs (index base+i for i >= 1).
  ebpf::Map* prog_array = att.maps().get(0);
  for (std::size_t i = 1; i < ids.size(); ++i) {
    auto st = prog_array->set_prog(base + static_cast<std::uint32_t>(i),
                                   ids[i]);
    if (!st.ok()) return st;
  }
  slot.next_chain_index = std::max(
      slot.next_chain_index,
      base + static_cast<std::uint32_t>(ids.size() ? ids.size() : 1));
  // Atomic activation.
  return att.swap(ids[0]);
}

util::Result<DeployReport> Deployer::deploy(
    const std::vector<SynthesisResult>& results) {
  DeployReport report;
  bool has_filter = false;
  std::set<std::pair<std::string, int>> deployed;
  for (const SynthesisResult& r : results) {
    auto st = deploy_one(r, report);
    if (!st.ok()) return st.error();
    ++report.devices;
    deployed.insert({r.device, static_cast<int>(r.hook)});
    for (const std::string& fpm : r.fpms) {
      if (fpm == "filter") has_filter = true;
    }
  }
  // Withdraw acceleration from devices no longer covered by any graph.
  for (auto& [key, slot] : attachments_) {
    if (deployed.count(key)) continue;
    if (!slot.has_pass_prog) {
      ebpf::ProgramBuilder b("lfp_pass", slot.attachment->hook());
      b.ret(ebpf::kActPass);
      auto prog = b.build();
      LFP_CHECK(prog.ok());
      auto id = slot.attachment->load(std::move(prog).take());
      LFP_CHECK(id.ok());
      slot.pass_prog = id.value();
      slot.has_pass_prog = true;
    }
    if (slot.attachment->active_prog_id() != slot.pass_prog) {
      auto st = slot.attachment->swap(slot.pass_prog);
      if (!st.ok()) return st.error();
    }
  }
  ++deploys_;
  report.modeled_compile_seconds =
      modeled_compile_seconds(report.programs, report.total_insns, has_filter);
  return report;
}

ebpf::Attachment* Deployer::attachment(const std::string& device,
                                       ebpf::HookType hook) {
  auto it = attachments_.find({device, static_cast<int>(hook)});
  return it == attachments_.end() ? nullptr : it->second.attachment.get();
}

std::uint32_t Deployer::next_chain_index(const std::string& device,
                                         ebpf::HookType hook) const {
  auto it = attachments_.find({device, static_cast<int>(hook)});
  return it == attachments_.end() ? 1 : it->second.next_chain_index;
}

}  // namespace linuxfp::core
