#include "core/controller.h"

#include <algorithm>

#include "util/logging.h"

namespace linuxfp::core {

namespace {
TopologyOptions topo_options(const ControllerOptions& o) {
  TopologyOptions t;
  t.attach_physical = o.attach_physical;
  t.attach_bridge_ports = o.attach_bridge_ports;
  t.attach_overlay = o.attach_overlay;
  t.hook = o.hook;
  return t;
}
}  // namespace

Controller::Controller(kern::Kernel& kernel, ControllerOptions options)
    : kernel_(kernel),
      options_(std::move(options)),
      introspection_(kernel.netlink()),
      topology_(topo_options(options_)),
      capability_(helpers_),
      synthesizer_(options_.chain),
      deployer_(kernel_, helpers_),
      backoff_rng_(options_.backoff.jitter_seed) {
  if (options_.mainline_helpers_only) {
    ebpf::register_mainline_helpers(helpers_, kernel_.cost());
  } else {
    ebpf::register_all_helpers(helpers_, kernel_.cost());
  }
  // One registry covers both paths: the deployer routes fastpath.*/ebpf.*
  // counters into the kernel's registry, next to the slowpath.* stages.
  deployer_.set_metrics(&kernel_.metrics());
  if (options_.flow_cache) deployer_.set_flow_cache(true);
  deployer_.set_exec_engine(options_.exec_engine);
  if (options_.guard.enabled) {
    guard_ = std::make_unique<EquivalenceGuard>(kernel_, options_.guard);
    deployer_.set_guard(guard_.get());
  }
}

Reaction Controller::start() {
  introspection_.initial_sync();
  return rebuild_and_deploy();
}

Reaction Controller::run_once() {
  bool guard_reprobe = maintain_guard();
  bool force = force_resynth_;
  bool changed = introspection_.poll() || force;
  bool retry_due = health_.next_retry_ns != 0 &&
                   kernel_.now_ns() >= health_.next_retry_ns;
  if (!changed && !retry_due && !guard_reprobe) return Reaction{};
  force_resynth_ = false;
  return rebuild_and_deploy(force || retry_due || guard_reprobe);
}

bool Controller::maintain_guard() {
  if (!guard_) return false;
  // Complete breaker trips raised on the datapath since the last pass: park
  // each tripped hook on its PASS fallback (epoch-flushing the flow cache)
  // and schedule the re-probe redeploy with jittered backoff.
  GuardMaintenance gm = guard_->maintain(
      kernel_.now_ns(), [this](const std::string& dev, ebpf::HookType hook) {
        deployer_.quarantine(dev, hook);
      });
  if (!gm.quarantined_devices.empty()) {
    health_.degraded = true;
    health_.last_degraded_ns = kernel_.now_ns();
    for (const std::string& dev : gm.quarantined_devices) {
      ++health_.failures_by_code["guard.quarantine"];
      health_.last_error = "guard.quarantine: " + dev;
    }
  }
  // A breaker close (half-open probes all clean) recovers guard-driven
  // degradation once no unit is left open — deploy-driven degradation keeps
  // its own recovery path in record_deploy_success.
  const GuardTotals t = guard_->totals();
  if (t.closes > guard_closes_seen_) {
    guard_closes_seen_ = t.closes;
    if (health_.degraded && t.units_unhealthy == 0 &&
        health_.consecutive_failures == 0) {
      health_.degraded = false;
      health_.last_recovered_ns = kernel_.now_ns();
      LFP_INFO("controller") << "guard: all breakers closed; healthy again";
    }
  }
  return gm.reprobe_due;
}

void Controller::set_custom_snippet(Synthesizer::CustomSnippet snippet) {
  synthesizer_.set_custom_snippet(std::move(snippet));
  force_resynth_ = true;
}

HealthStatus Controller::health() const {
  HealthStatus h = health_;
  h.introspection_errors = introspection_.dump_failures();
  if (guard_) {
    const GuardTotals t = guard_->totals();
    h.guard_divergences = t.divergences;
    h.guard_quarantines = t.quarantines;
    h.guard_promotions = t.promotions;
    h.guard_canary_rejections = t.canary_rejections;
    h.guard_half_open_probes = t.half_open_probes;
    h.guard_recoveries = t.closes;
    h.guard_compares = t.compares;
    h.guard_sampled = t.sampled;
    h.guard_units = t.units;
    h.guard_units_open = t.units_open;
  }
  return h;
}

std::uint64_t Controller::backoff_delay_ns() {
  const BackoffPolicy& p = options_.backoff;
  std::uint32_t exponent =
      health_.consecutive_failures > 0 ? health_.consecutive_failures - 1 : 0;
  exponent = std::min(exponent, 32u);
  std::uint64_t delay = p.base_ns;
  for (std::uint32_t i = 0; i < exponent && delay < p.max_ns; ++i) delay <<= 1;
  delay = std::min(delay, p.max_ns);
  // Seeded +/-jitter keeps retries deterministic per controller but
  // de-phased across a fleet.
  double factor = 1.0 + p.jitter * (2.0 * backoff_rng_.next_double() - 1.0);
  if (factor < 0.0) factor = 0.0;
  return static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
}

void Controller::record_deploy_failure(const DeployReport& report) {
  ++health_.deploy_failures;
  ++health_.consecutive_failures;
  health_.device_rollbacks += report.rollbacks;
  for (const DeviceFailure& f : report.failures) {
    ++health_.failures_by_code[f.error.code];
    health_.last_error = f.error.code + ": " + f.error.message;
  }
  health_.degraded = true;
  health_.last_degraded_ns = kernel_.now_ns();
  // The failed devices run the bare slow path and the installed signature no
  // longer reflects reality; clear it so the retry resynthesizes.
  last_signature_.clear();
  health_.next_retry_ns = kernel_.now_ns() + backoff_delay_ns();
  ++health_.retries_scheduled;
  LFP_WARN("controller") << report.failures.size()
                         << " device(s) degraded to slow path; retry at t+"
                         << (health_.next_retry_ns - kernel_.now_ns()) / 1000000
                         << "ms";
}

void Controller::record_deploy_success() {
  // A successful deploy ends deploy-driven degradation, but guard-driven
  // degradation outlives it: the re-probe redeploy of a quarantined unit
  // succeeds while the breaker is merely half-open, and only a clean probe
  // streak (observed in maintain_guard) closes it.
  const bool guard_open = guard_ && guard_->totals().units_unhealthy > 0;
  if (health_.degraded && !guard_open) {
    health_.degraded = false;
    ++health_.recoveries;
    health_.last_recovered_ns = kernel_.now_ns();
    LFP_INFO("controller") << "deploy recovered after "
                           << health_.consecutive_failures << " failure(s)";
  }
  health_.consecutive_failures = 0;
  health_.next_retry_ns = 0;
}

Reaction Controller::rebuild_and_deploy(bool force) {
  auto t0 = std::chrono::steady_clock::now();
  Reaction reaction;
  reaction.changed = true;

  util::Json raw = topology_.build(introspection_.view());
  graphs_ = capability_.prune(raw, &reaction.dropped_fpms);

  std::string signature = TopologyManager::signature(graphs_);
  if (signature == last_signature_ && !force) {
    // Configuration changed but the derived fast path did not (e.g. a
    // dynamic neighbour entry, or a bridge with no ports yet): nothing to
    // redeploy — helpers read live state, so no action is needed. This is
    // the state-unification payoff. The reaction still spent introspection
    // and graph-rebuild time (plus, in the real controller, the render/diff
    // of the unchanged templates — modeled below).
    reaction.changed = false;
    auto t_end = std::chrono::steady_clock::now();
    reaction.wall_seconds = std::chrono::duration<double>(t_end - t0).count();
    reaction.modeled_seconds = reaction.wall_seconds + 0.48;
    return reaction;
  }
  bool old_is_current = !deployed_signature_.empty() &&
                        signature == deployed_signature_;
  last_signature_ = signature;
  ++resynth_count_;

  // Delta synthesis (DESIGN.md §17): diff each graph's description against
  // the signature recorded at its last successful deploy and re-emit only
  // the changed ones. `coverage` carries the full desired device set so the
  // deployer withdraws exactly the devices no graph wants anymore — reused
  // devices keep their current program untouched. A forced redeploy
  // (snippet, guard re-probe, failure retry) regenerates everything: those
  // paths change program content without changing graph descriptions.
  const bool delta = options_.delta_synthesis && !force;
  std::set<std::pair<std::string, int>> coverage;
  std::map<std::pair<std::string, int>, std::string> desired_sigs;
  std::vector<SynthesisResult> results;
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    const util::Json& g = graphs_.at(i);
    const std::string device = g.at("device").as_string();
    ebpf::HookType hook = g.at("hook").as_string() == "tc"
                              ? ebpf::HookType::kTcIngress
                              : ebpf::HookType::kXdp;
    const std::pair<std::string, int> key{device, static_cast<int>(hook)};
    std::string graph_sig = TopologyManager::signature(g);
    coverage.insert(key);
    auto deployed = deployed_graph_sigs_.find(key);
    if (delta && deployed != deployed_graph_sigs_.end() &&
        deployed->second == graph_sig) {
      ++reaction.reused_graphs;
      continue;
    }
    // Fresh tail-call indices are assigned by the deployer slot; pass the
    // next free index hint (only meaningful for tail-call mode).
    std::uint32_t base = deployer_.next_chain_index(device, hook);
    auto result = synthesizer_.synthesize(g, base);
    if (!result.ok()) {
      LFP_WARN("controller") << "synthesis failed for " << device << ": "
                             << result.error().message;
      continue;
    }
    ++graph_resynth_count_;
    ++reaction.synthesized_graphs;
    desired_sigs[key] = std::move(graph_sig);
    results.push_back(std::move(result).take());
  }

  ++health_.deploy_attempts;
  DeployReport report = deployer_.deploy(results, old_is_current, &coverage);
  reaction.graphs = graphs_.size();
  reaction.programs = report.programs;
  reaction.insns = report.total_insns;
  // Update the per-graph diff basis: withdrawn devices forget their
  // signature, freshly deployed devices record theirs, and devices whose
  // deploy failed drop it so the retry re-synthesizes them even under delta.
  for (auto it = deployed_graph_sigs_.begin();
       it != deployed_graph_sigs_.end();) {
    if (!coverage.count(it->first)) it = deployed_graph_sigs_.erase(it);
    else ++it;
  }
  for (auto& [key, sig] : desired_sigs) deployed_graph_sigs_[key] = sig;
  for (const DeviceFailure& f : report.failures) {
    for (auto it = deployed_graph_sigs_.begin();
         it != deployed_graph_sigs_.end();) {
      if (it->first.first == f.device) it = deployed_graph_sigs_.erase(it);
      else ++it;
    }
  }
  if (!report.all_ok()) {
    reaction.deploy_failed = true;
    reaction.failed_devices = report.failures.size();
    record_deploy_failure(report);
  } else {
    deployed_signature_ = signature;
    record_deploy_success();
  }

  auto t1 = std::chrono::steady_clock::now();
  reaction.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  reaction.modeled_seconds =
      reaction.wall_seconds + report.modeled_compile_seconds;
  return reaction;
}

}  // namespace linuxfp::core
