#include "core/controller.h"

#include "util/logging.h"

namespace linuxfp::core {

namespace {
TopologyOptions topo_options(const ControllerOptions& o) {
  TopologyOptions t;
  t.attach_physical = o.attach_physical;
  t.attach_bridge_ports = o.attach_bridge_ports;
  t.attach_overlay = o.attach_overlay;
  t.hook = o.hook;
  return t;
}
}  // namespace

Controller::Controller(kern::Kernel& kernel, ControllerOptions options)
    : kernel_(kernel),
      options_(std::move(options)),
      introspection_(kernel.netlink()),
      topology_(topo_options(options_)),
      capability_(helpers_),
      synthesizer_(options_.chain),
      deployer_(kernel_, helpers_) {
  if (options_.mainline_helpers_only) {
    ebpf::register_mainline_helpers(helpers_, kernel_.cost());
  } else {
    ebpf::register_all_helpers(helpers_, kernel_.cost());
  }
}

Reaction Controller::start() {
  introspection_.initial_sync();
  return rebuild_and_deploy();
}

Reaction Controller::run_once() {
  bool force = force_resynth_;
  bool changed = introspection_.poll() || force;
  if (!changed) return Reaction{};
  force_resynth_ = false;
  return rebuild_and_deploy(force);
}

void Controller::set_custom_snippet(Synthesizer::CustomSnippet snippet) {
  synthesizer_.set_custom_snippet(std::move(snippet));
  force_resynth_ = true;
}

Reaction Controller::rebuild_and_deploy(bool force) {
  auto t0 = std::chrono::steady_clock::now();
  Reaction reaction;
  reaction.changed = true;

  util::Json raw = topology_.build(introspection_.view());
  graphs_ = capability_.prune(raw, &reaction.dropped_fpms);

  std::string signature = TopologyManager::signature(graphs_);
  if (signature == last_signature_ && !force) {
    // Configuration changed but the derived fast path did not (e.g. a
    // dynamic neighbour entry, or a bridge with no ports yet): nothing to
    // redeploy — helpers read live state, so no action is needed. This is
    // the state-unification payoff. The reaction still spent introspection
    // and graph-rebuild time (plus, in the real controller, the render/diff
    // of the unchanged templates — modeled below).
    reaction.changed = false;
    auto t_end = std::chrono::steady_clock::now();
    reaction.wall_seconds = std::chrono::duration<double>(t_end - t0).count();
    reaction.modeled_seconds = reaction.wall_seconds + 0.48;
    return reaction;
  }
  last_signature_ = signature;
  ++resynth_count_;

  std::vector<SynthesisResult> results;
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    // Fresh tail-call indices are assigned by the deployer slot; pass the
    // next free index hint (only meaningful for tail-call mode).
    const util::Json& g = graphs_.at(i);
    std::uint32_t base = deployer_.next_chain_index(
        g.at("device").as_string(),
        g.at("hook").as_string() == "tc" ? ebpf::HookType::kTcIngress
                                         : ebpf::HookType::kXdp);
    auto result = synthesizer_.synthesize(g, base);
    if (!result.ok()) {
      LFP_WARN("controller") << "synthesis failed for "
                             << g.at("device").as_string() << ": "
                             << result.error().message;
      continue;
    }
    results.push_back(std::move(result).take());
  }

  auto report = deployer_.deploy(results);
  if (!report.ok()) {
    LFP_ERROR("controller") << "deploy failed: " << report.error().message;
    return reaction;
  }
  reaction.graphs = graphs_.size();
  reaction.programs = report->programs;
  reaction.insns = report->total_insns;

  auto t1 = std::chrono::steady_clock::now();
  reaction.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  reaction.modeled_seconds =
      reaction.wall_seconds + report->modeled_compile_seconds;
  return reaction;
}

}  // namespace linuxfp::core
