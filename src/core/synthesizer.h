// Fast Path Synthesizer: turns a per-device processing graph (JSON) into
// eBPF programs via the FPM library, specialized to the current
// configuration (paper §IV-B3, §V "Controller").
//
// Two composition modes are supported:
//  - kInlineCalls (LinuxFP's choice): all FPMs are concatenated into a single
//    program — snippet "function calls" are inlined, no per-hop overhead.
//  - kTailCalls (Polycube's choice): one program per FPM chained with
//    bpf_tail_call. Each program must re-derive its state (re-parse), and
//    every transition costs a tail call — the Fig 10 effect.
#pragma once

#include <string>
#include <vector>

#include "core/fpm_library.h"
#include "ebpf/program.h"
#include "util/json.h"
#include "util/result.h"

namespace linuxfp::core {

enum class ChainMode { kInlineCalls, kTailCalls };

struct SynthesisResult {
  std::string device;
  int ifindex = 0;
  ebpf::HookType hook = ebpf::HookType::kXdp;
  // programs[0] is the chain entry. In tail-call mode programs[i] tail-calls
  // into dispatcher prog-array index (tail_call_base + i + 1), so the
  // deployer must install programs[j] (j >= 1) at index tail_call_base + j.
  std::vector<ebpf::Program> programs;
  std::uint32_t tail_call_base = 1;
  // FPM names included, in order (for logging / tests / reaction model).
  std::vector<std::string> fpms;
};

class Synthesizer {
 public:
  explicit Synthesizer(ChainMode mode = ChainMode::kInlineCalls)
      : mode_(mode) {}

  ChainMode mode() const { return mode_; }
  void set_mode(ChainMode mode) { mode_ = mode; }

  // Optional custom snippet injected ahead of the synthesized FPMs (paper
  // §VIII: "support the insertion of custom functionality, e.g. for
  // monitoring modules"). The emitter must not fall off the program: it
  // either falls through to the next FPM or jumps to punt/drop.
  using CustomSnippet = std::function<void(ebpf::ProgramBuilder&)>;
  void set_custom_snippet(CustomSnippet snippet) {
    custom_ = std::move(snippet);
  }

  // Synthesizes one device graph. `tail_call_base` is the dispatcher
  // prog-array index where the deployer will place programs[1..] (tail-call
  // mode only).
  util::Result<SynthesisResult> synthesize(const util::Json& graph,
                                           std::uint32_t tail_call_base = 1)
      const;

 private:
  util::Result<ebpf::Program> synthesize_inline(const util::Json& graph) const;
  util::Status synthesize_tailcalls(const util::Json& graph,
                                    std::uint32_t base,
                                    SynthesisResult& out) const;

  ChainMode mode_;
  CustomSnippet custom_;
};

}  // namespace linuxfp::core
