// The LinuxFP controller daemon: continuously introspects the kernel,
// rebuilds the processing graph on configuration changes, synthesizes the
// minimal fast path and deploys it (paper Fig 2 / Fig 3 / §V).
//
// In a real deployment run() loops forever; in the simulation the event loop
// calls run_once() whenever simulated time advances or a tool command ran.
//
// Deploy failures (injected or real) never interrupt traffic: the deployer
// rolls the failed device back and degrades it to the bare slow path, the
// controller flips its HealthStatus to degraded and retries with bounded,
// jittered exponential backoff until a deploy succeeds again.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/capability.h"
#include "core/deployer.h"
#include "core/introspect.h"
#include "core/status.h"
#include "core/synthesizer.h"
#include "core/topology.h"
#include "ebpf/kernel_helpers.h"
#include "kernel/kernel.h"
#include "util/rng.h"

namespace linuxfp::core {

// Retry policy after a failed deploy reaction: exponential backoff from
// base_ns doubling per consecutive failure up to max_ns, with +/-jitter
// (seeded, deterministic) so a fleet of controllers never retries in phase.
struct BackoffPolicy {
  std::uint64_t base_ns = 10'000'000;    // 10 ms
  std::uint64_t max_ns = 2'000'000'000;  // 2 s cap
  double jitter = 0.2;                   // fraction of the delay, +/-
  std::uint64_t jitter_seed = 0x5eedfa11u;
};

struct ControllerOptions {
  std::string hook = "xdp";  // "xdp" (driver mode) or "tc"
  ChainMode chain = ChainMode::kInlineCalls;
  bool attach_physical = true;
  bool attach_bridge_ports = false;  // container/TC mode
  bool attach_overlay = false;       // vxlan VTEP devices
  // Restrict to mainline helpers (no bpf_fdb_lookup/bpf_ipt_lookup): the
  // Capability Manager will prune bridge/filter FPMs.
  bool mainline_helpers_only = false;
  // Microflow verdict cache (DESIGN.md §12) on every deployed attachment.
  bool flow_cache = false;
  // Execution backend for every deployed attachment (DESIGN.md §14): the
  // pre-decoded interpreter, or the direct-threaded translator with
  // per-program interpreter fallback.
  ebpf::ExecEngine exec_engine = ebpf::ExecEngine::kInterpreter;
  BackoffPolicy backoff;
  // Runtime equivalence guard (DESIGN.md §13): canary deployment, sampled
  // shadow execution and per-FPM circuit breakers. Off by default.
  GuardPolicy guard;
  // Delta synthesis (DESIGN.md §17): diff per-graph signatures on each
  // reaction and re-emit/re-verify/re-deploy only graphs whose description
  // changed, so reaction time scales with the delta instead of the config.
  // Forced redeploys (snippet injection, guard re-probes, failure retries)
  // bypass the diff and rebuild everything, as do deploy-failed devices.
  bool delta_synthesis = true;
};

// One controller reaction (paper Table VI): from seeing a configuration
// change to confirmed fast-path installation.
struct Reaction {
  bool changed = false;
  std::size_t graphs = 0;
  std::size_t programs = 0;
  std::size_t insns = 0;
  std::vector<std::string> dropped_fpms;
  // Deploy outcome: devices that failed were degraded to the slow path and
  // a retry is scheduled (see Controller::health()).
  bool deploy_failed = false;
  std::size_t failed_devices = 0;
  // Delta-synthesis split of `graphs`: how many were re-synthesized this
  // reaction versus left untouched because their description was unchanged.
  std::size_t synthesized_graphs = 0;
  std::size_t reused_graphs = 0;
  double wall_seconds = 0;     // measured in this reproduction
  double modeled_seconds = 0;  // + modeled clang/libbpf stages (Table VI)
};

class Controller {
 public:
  explicit Controller(kern::Kernel& kernel, ControllerOptions options = {});

  // Initial sync + first synthesis/deployment.
  Reaction start();

  // Polls netlink; on relevant change — or when a failed deploy's backoff
  // deadline (simulated kernel time) has passed — re-synthesizes and
  // redeploys.
  Reaction run_once();

  kern::Kernel& kernel() { return kernel_; }
  const WorldView& view() const { return introspection_.view(); }
  const util::Json& current_graphs() const { return graphs_; }
  Deployer& deployer() { return deployer_; }
  Synthesizer& synthesizer() { return synthesizer_; }
  // Null unless options.guard.enabled.
  EquivalenceGuard* guard() { return guard_.get(); }
  const ebpf::HelperRegistry& helpers() const { return helpers_; }
  // Reactions that synthesized at least one graph (historic semantics).
  std::uint64_t resynth_count() const { return resynth_count_; }
  // Individual graphs synthesized across all reactions: the delta-synthesis
  // work metric (a from-scratch controller pays graphs-per-reaction here).
  std::uint64_t graph_resynth_count() const { return graph_resynth_count_; }

  // Health record: degraded-mode state and failure counters (including the
  // per-injection-point table when fault injection is armed).
  HealthStatus health() const;

  // Injects a custom verified snippet ahead of every synthesized fast path
  // (monitoring extension); triggers a redeploy on the next run_once.
  void set_custom_snippet(Synthesizer::CustomSnippet snippet);

 private:
  Reaction rebuild_and_deploy(bool force = false);
  // Guard maintenance pass at the top of run_once; returns true when a
  // quarantined unit's re-probe deadline passed (forces a redeploy).
  bool maintain_guard();
  void record_deploy_failure(const DeployReport& report);
  void record_deploy_success();
  std::uint64_t backoff_delay_ns();

  kern::Kernel& kernel_;
  ControllerOptions options_;
  ebpf::HelperRegistry helpers_;
  ServiceIntrospection introspection_;
  TopologyManager topology_;
  CapabilityManager capability_;
  Synthesizer synthesizer_;
  Deployer deployer_;
  // Declared after deployer_ so the guard (whose units front the deployer's
  // attachments on the device hooks) is destroyed first.
  std::unique_ptr<EquivalenceGuard> guard_;
  util::Json graphs_;
  std::string last_signature_;
  // Signature of the fast path that actually serves traffic (last successful
  // deploy); tells the deployer whether the old program is still current when
  // a redeploy fails.
  std::string deployed_signature_;
  // Per-graph deployed signatures, keyed like the deployer's slots: the diff
  // basis for delta synthesis. An entry is present iff that (device, hook)
  // runs a successfully deployed program derived from the recorded graph.
  std::map<std::pair<std::string, int>, std::string> deployed_graph_sigs_;
  std::uint64_t resynth_count_ = 0;
  std::uint64_t graph_resynth_count_ = 0;
  bool force_resynth_ = false;
  HealthStatus health_;
  // Breaker closes observed at the last run_once; a new close with no unit
  // left quarantined/half-open clears guard-driven degradation.
  std::uint64_t guard_closes_seen_ = 0;
  util::Rng backoff_rng_;
};

}  // namespace linuxfp::core
