// The LinuxFP controller daemon: continuously introspects the kernel,
// rebuilds the processing graph on configuration changes, synthesizes the
// minimal fast path and deploys it (paper Fig 2 / Fig 3 / §V).
//
// In a real deployment run() loops forever; in the simulation the event loop
// calls run_once() whenever simulated time advances or a tool command ran.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/capability.h"
#include "core/deployer.h"
#include "core/introspect.h"
#include "core/synthesizer.h"
#include "core/topology.h"
#include "ebpf/kernel_helpers.h"
#include "kernel/kernel.h"

namespace linuxfp::core {

struct ControllerOptions {
  std::string hook = "xdp";  // "xdp" (driver mode) or "tc"
  ChainMode chain = ChainMode::kInlineCalls;
  bool attach_physical = true;
  bool attach_bridge_ports = false;  // container/TC mode
  bool attach_overlay = false;       // vxlan VTEP devices
  // Restrict to mainline helpers (no bpf_fdb_lookup/bpf_ipt_lookup): the
  // Capability Manager will prune bridge/filter FPMs.
  bool mainline_helpers_only = false;
};

// One controller reaction (paper Table VI): from seeing a configuration
// change to confirmed fast-path installation.
struct Reaction {
  bool changed = false;
  std::size_t graphs = 0;
  std::size_t programs = 0;
  std::size_t insns = 0;
  std::vector<std::string> dropped_fpms;
  double wall_seconds = 0;     // measured in this reproduction
  double modeled_seconds = 0;  // + modeled clang/libbpf stages (Table VI)
};

class Controller {
 public:
  explicit Controller(kern::Kernel& kernel, ControllerOptions options = {});

  // Initial sync + first synthesis/deployment.
  Reaction start();

  // Polls netlink; on relevant change re-synthesizes and redeploys.
  Reaction run_once();

  const WorldView& view() const { return introspection_.view(); }
  const util::Json& current_graphs() const { return graphs_; }
  Deployer& deployer() { return deployer_; }
  Synthesizer& synthesizer() { return synthesizer_; }
  const ebpf::HelperRegistry& helpers() const { return helpers_; }
  std::uint64_t resynth_count() const { return resynth_count_; }

  // Injects a custom verified snippet ahead of every synthesized fast path
  // (monitoring extension); triggers a redeploy on the next run_once.
  void set_custom_snippet(Synthesizer::CustomSnippet snippet);

 private:
  Reaction rebuild_and_deploy(bool force = false);

  kern::Kernel& kernel_;
  ControllerOptions options_;
  ebpf::HelperRegistry helpers_;
  ServiceIntrospection introspection_;
  TopologyManager topology_;
  CapabilityManager capability_;
  Synthesizer synthesizer_;
  Deployer deployer_;
  util::Json graphs_;
  std::string last_signature_;
  std::uint64_t resynth_count_ = 0;
  bool force_resynth_ = false;
};

}  // namespace linuxfp::core
