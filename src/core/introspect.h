// Service Introspection: maintains a WorldView of the kernel configuration
// by (1) issuing full dumps at startup and (2) subscribing to netlink
// multicast groups for incremental updates (paper §IV-C1, §V "Controller").
#pragma once

#include "core/objects.h"
#include "netlink/netlink.h"

namespace linuxfp::core {

class ServiceIntrospection {
 public:
  // Opens a socket on the bus and joins all relevant multicast groups.
  explicit ServiceIntrospection(nl::Bus& bus);

  // Initial full dump (RTM_GET* for every subsystem).
  void initial_sync();

  // Drains pending notifications; returns true if the view changed in a way
  // that can affect the fast path.
  bool poll();

  const WorldView& view() const { return view_; }

  std::uint64_t events_processed() const { return events_; }
  // Netlink dump reads that failed (fault-injected); the affected table kept
  // its stale-but-coherent contents and will be refreshed by the next event
  // or retry.
  std::uint64_t dump_failures() const { return dump_failures_; }

 private:
  bool apply(const nl::Message& msg);
  // False when a fault-injected dump failure fired; callers keep the stale
  // table instead of clearing it (a torn half-refresh would be worse).
  bool dump_ok();
  void apply_link(const util::Json& attrs, bool deleted);
  // Rules/sets/routes are cheap to re-dump; on any change event we refresh
  // the affected table from a dump (what the real controller does with
  // libiptc, which has no incremental API).
  void refresh_routes();
  void refresh_rules();
  void refresh_sets();
  void refresh_neighbors();
  void refresh_services();

  nl::Bus& bus_;
  nl::Socket* socket_;
  WorldView view_;
  std::uint64_t events_ = 0;
  std::uint64_t dump_failures_ = 0;
};

}  // namespace linuxfp::core
