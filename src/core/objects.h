// LinuxFP objects: typed descriptions of network services currently
// configured in the kernel, built from netlink messages by the Service
// Introspection component (paper §IV-C1). The WorldView aggregates them and
// is the sole input of the Topology Manager — the controller never reaches
// into kernel structures directly, only through introspection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipaddr.h"
#include "net/mac.h"
#include "util/json.h"

namespace linuxfp::core {

struct PortObject {
  int ifindex = 0;
  std::string ifname;
  std::string stp_state;  // "forwarding" etc.
  std::uint16_t pvid = 1;
};

struct LinkObject {
  int ifindex = 0;
  std::string ifname;
  std::string kind;  // physical | veth | bridge | vxlan | loopback
  std::string mac;
  bool up = false;
  std::uint32_t mtu = 1500;
  int master = 0;
  std::vector<std::string> addrs;
  // bridge-specific
  bool stp = false;
  bool vlan_filtering = false;
  std::vector<PortObject> ports;
  // vxlan-specific
  std::uint32_t vni = 0;

  bool has_addresses() const { return !addrs.empty(); }
};

struct RouteObject {
  std::string dst;      // prefix text
  std::string gateway;  // empty for connected routes
  int oif = 0;
  std::string dev;
  std::string scope;
  std::uint32_t metric = 0;
};

struct NeighObject {
  std::string ip;
  std::string mac;
  std::string dev;
  std::string state;
  bool dynamic = true;
};

struct RuleObject {
  util::Json raw;  // rule attribute object as dumped
};

struct ChainObject {
  std::string name;
  bool builtin = false;
  std::string policy = "ACCEPT";
  std::vector<RuleObject> rules;
};

struct ServiceObject {
  std::string vip;
  int port = 0;
  int proto = 6;
  std::string scheduler;
  std::size_t backend_count = 0;
};

struct SetObject {
  std::string name;
  std::string type;
  std::size_t size = 0;
};

// The controller's complete introspected view of one kernel.
struct WorldView {
  std::map<int, LinkObject> links;
  std::vector<RouteObject> routes;
  std::vector<NeighObject> neighbors;
  std::map<std::string, ChainObject> chains;
  std::map<std::string, SetObject> sets;
  std::vector<ServiceObject> services;
  std::map<std::string, int> sysctls;

  bool ip_forward() const {
    auto it = sysctls.find("net.ipv4.ip_forward");
    return it != sysctls.end() && it->second != 0;
  }
  const LinkObject* link_by_name(const std::string& name) const {
    for (const auto& [ifi, l] : links) {
      if (l.ifname == name) return &l;
    }
    return nullptr;
  }
  std::size_t forward_rule_count() const {
    auto it = chains.find("FORWARD");
    return it == chains.end() ? 0 : it->second.rules.size();
  }
  bool forward_has_policy_drop() const {
    auto it = chains.find("FORWARD");
    return it != chains.end() && it->second.policy == "DROP";
  }
  // Non-connected (global-scope) routes, the signal that routing is in use.
  std::size_t global_route_count() const {
    std::size_t n = 0;
    for (const auto& r : routes) {
      if (r.scope != "link") ++n;
    }
    return n;
  }
};

}  // namespace linuxfp::core
