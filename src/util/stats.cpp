#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace linuxfp::util {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::percentile(double q) const {
  LFP_CHECK_MSG(q >= 0.0 && q <= 1.0, "percentile out of range");
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  double rank = q * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_si_rate(double per_second) {
  char buf[64];
  if (per_second >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", per_second / 1e9);
  } else if (per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", per_second / 1e6);
  } else if (per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fk", per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", per_second);
  }
  return buf;
}

}  // namespace linuxfp::util
