#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace linuxfp::util {

namespace {
const Json& null_json() {
  static const Json kNull;
  return kNull;
}
}  // namespace

Json& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, Json{});
  return entries_.back().second;
}

const Json* JsonObject::find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  LFP_CHECK_MSG(type_ == Type::kObject, "operator[] on non-object JSON");
  return obj_[key];
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) return null_json();
  const Json* found = obj_.find(key);
  return found ? *found : null_json();
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && obj_.contains(key);
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  LFP_CHECK_MSG(type_ == Type::kArray, "push_back on non-array JSON");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray || index >= arr_.size()) return null_json();
  return arr_[index];
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: {
      if (obj_.size() != other.obj_.size()) return false;
      auto it = other.obj_.begin();
      for (const auto& [k, v] : obj_) {
        if (k != it->first || !(v == it->second)) return false;
        ++it;
      }
      return true;
    }
  }
  return false;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(double d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(num_, out); break;
    case Type::kString: escape_string(str_, out); break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += indent >= 0 ? "," : ", ";
        first = false;
        if (indent >= 0) append_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0 && !arr_.empty()) append_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += indent >= 0 ? "," : ", ";
        first = false;
        if (indent >= 0) append_indent(out, indent, depth + 1);
        escape_string(k, out);
        out += ": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0 && !obj_.empty()) append_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> parse() {
    skip_ws();
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return Error::make("json.trailing", "trailing characters at offset " +
                                              std::to_string(pos_));
    }
    return v;
  }

 private:
  Result<Json> parse_value() {
    if (pos_ >= text_.size()) {
      return Error::make("json.eof", "unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  Result<Json> parse_object() {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') {
        return Error::make("json.key", "expected string key");
      }
      auto key = parse_raw_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (peek() != ':') return Error::make("json.colon", "expected ':'");
      ++pos_;
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      obj[key.value()] = std::move(v).take();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      return Error::make("json.object", "expected ',' or '}'");
    }
  }

  Result<Json> parse_array() {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(std::move(v).take());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      return Error::make("json.array", "expected ',' or ']'");
    }
  }

  Result<Json> parse_string_value() {
    auto s = parse_raw_string();
    if (!s.ok()) return s.error();
    return Json(std::move(s).take());
  }

  Result<std::string> parse_raw_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Error::make("json.escape", "truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error::make("json.escape", "bad hex digit");
            }
            // Only BMP codepoints; encode UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error::make("json.escape", "unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Error::make("json.string", "unterminated string");
  }

  Result<Json> parse_bool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    return Error::make("json.literal", "bad literal");
  }

  Result<Json> parse_null() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json(nullptr);
    }
    return Error::make("json.literal", "bad literal");
  }

  Result<Json> parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error::make("json.number", "expected a value");
    }
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Error::make("json.number", "bad number");
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace linuxfp::util
