// Minimal leveled logger. Global level, stderr sink, printf-free streaming
// interface. Packet paths must not log at Info or below in hot loops.
#pragma once

#include <sstream>
#include <string>

namespace linuxfp::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void emit_log(LogLevel level, const std::string& component,
              const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { emit_log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

struct LogSink {
  // Swallows the streamed expression when the level is disabled.
  void operator&(const LogLine&) const {}
};
}  // namespace detail

#define LFP_LOG(level, component)                                  \
  (::linuxfp::util::log_level() > (level))                         \
      ? (void)0                                                    \
      : ::linuxfp::util::detail::LogSink{} &                       \
            ::linuxfp::util::detail::LogLine((level), (component))

#define LFP_TRACE(component) LFP_LOG(::linuxfp::util::LogLevel::kTrace, component)
#define LFP_DEBUG(component) LFP_LOG(::linuxfp::util::LogLevel::kDebug, component)
#define LFP_INFO(component) LFP_LOG(::linuxfp::util::LogLevel::kInfo, component)
#define LFP_WARN(component) LFP_LOG(::linuxfp::util::LogLevel::kWarn, component)
#define LFP_ERROR(component) LFP_LOG(::linuxfp::util::LogLevel::kError, component)

// Invariant check: programming errors abort with a message. Never used for
// input validation (that is what Result/Status are for).
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);

#define LFP_CHECK(expr)                                                     \
  ((expr) ? (void)0                                                         \
          : ::linuxfp::util::check_failed(#expr, __FILE__, __LINE__, ""))

#define LFP_CHECK_MSG(expr, msg)                                            \
  ((expr) ? (void)0                                                         \
          : ::linuxfp::util::check_failed(#expr, __FILE__, __LINE__, (msg)))

}  // namespace linuxfp::util
