// Deterministic fault injection (the kernel's CONFIG_FAULT_INJECTION
// analogue): named injection points registered at every fallible seam of the
// deploy pipeline — program load, verifier acceptance, map update/lookup,
// device attach, netlink dump reads, command application. Tests and the sim
// testbed arm a seeded schedule; armed points fire deterministically, so any
// failure reproduces from the seed alone.
//
// Disarmed (the default) every check is a single relaxed branch — production
// paths pay nothing. Rollback and terminal-degradation paths run under a
// FaultSuppress scope: the fallback that restores the bare slow path must
// itself be infallible, mirroring how a real deployment's rollback is simply
// "don't perform the final prog-array swap".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace linuxfp::util {

// Registered injection point names (the fallible seams). Call sites pass
// these constants so tests and schedules can't drift from the code.
inline constexpr const char* kFaultLoaderLoad = "loader.load";
inline constexpr const char* kFaultLoaderAttach = "loader.attach";
inline constexpr const char* kFaultVerifier = "verifier.verify";
inline constexpr const char* kFaultMapUpdate = "maps.update";
inline constexpr const char* kFaultMapLookup = "maps.lookup";
inline constexpr const char* kFaultMapCreate = "maps.create";
inline constexpr const char* kFaultDeployerAttach = "deployer.attach";
inline constexpr const char* kFaultNetlinkDump = "netlink.dump";
inline constexpr const char* kFaultKernelCommand = "kernel.command";
// Equivalence-guard seams (core/guard.h). The injector is not thread-safe:
// guard.verdict fires on the datapath, so tests may only arm it on
// single-threaded (sim inline) runs, never while engine workers execute.
inline constexpr const char* kFaultGuardVerdict = "guard.verdict";
inline constexpr const char* kFaultGuardBreaker = "guard.breaker";
inline constexpr const char* kFaultEngineWatchdog = "engine.watchdog";

class FaultInjector {
 public:
  // How a point decides to fire. All rules are evaluated against the
  // per-point hit counter and the armed seed only — no wall clock, no global
  // state — so a schedule replays identically.
  struct Rule {
    enum class Kind { kNone, kAlways, kNth, kTimes, kProbability };
    Kind kind = Kind::kNone;
    std::uint64_t n = 0;  // kNth: fire on exactly the n-th hit (1-based);
                          // kTimes: fire on the next n hits, then stop
    double p = 0.0;       // kProbability: fire on each hit with probability p
  };

  struct PointStats {
    std::string point;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  // Process-wide instance, like the kernel's fault_attr debugfs knobs.
  static FaultInjector& global();

  // Arms with a deterministic seed; clears any previous rules and counters.
  void arm(std::uint64_t seed);
  // Disarms and clears all rules and counters.
  void disarm();
  bool armed() const { return armed_; }
  std::uint64_t seed() const { return seed_; }

  // --- rule installation -----------------------------------------------------
  void fail_always(std::string_view point);
  // Fire on exactly the nth hit (1-based) of the point.
  void fail_nth(std::string_view point, std::uint64_t nth);
  // Fire on the next n hits (after rule installation), then stop.
  void fail_times(std::string_view point, std::uint64_t n);
  // Fire each hit with probability p (seed-driven).
  void fail_probability(std::string_view point, double p);
  void clear(std::string_view point);
  void clear_all();

  // Parses a schedule spec and installs its rules, e.g.
  //   "loader.load:p=0.3;maps.update:nth=2;verifier.verify:times=1;
  //    deployer.attach:always"
  // Entries are separated by ';' or ','. Returns an error on malformed specs
  // without installing anything.
  Status install_schedule(const std::string& spec);

  // --- check points ----------------------------------------------------------
  // True if the point should fail now. Counts a hit when armed.
  bool should_fail(std::string_view point);
  // Status-returning form: error code is "fault.<point>" so failure counters
  // aggregate per injection point.
  Status check(std::string_view point);

  // --- observability ---------------------------------------------------------
  std::uint64_t hits(std::string_view point) const;
  std::uint64_t fires(std::string_view point) const;
  // Hits absorbed by FaultSuppress scopes (rollback paths).
  std::uint64_t suppressed() const { return suppressed_; }
  std::vector<PointStats> stats() const;

 private:
  friend class FaultSuppress;

  struct Point {
    Rule rule;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  Point& point(std::string_view name);

  bool armed_ = false;
  int suppress_depth_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t suppressed_ = 0;
  Rng rng_;
  std::map<std::string, Point, std::less<>> points_;
};

// Arms the global injector for one scope (a test body); disarms on exit so
// fault schedules can never leak between tests.
class FaultScope {
 public:
  explicit FaultScope(std::uint64_t seed) { FaultInjector::global().arm(seed); }
  ~FaultScope() { FaultInjector::global().disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultInjector* operator->() { return &FaultInjector::global(); }
};

// Suppresses fault firing for one scope. Used by rollback / terminal
// degradation paths, which must be infallible by design.
class FaultSuppress {
 public:
  FaultSuppress() { ++FaultInjector::global().suppress_depth_; }
  ~FaultSuppress() { --FaultInjector::global().suppress_depth_; }
  FaultSuppress(const FaultSuppress&) = delete;
  FaultSuppress& operator=(const FaultSuppress&) = delete;
};

}  // namespace linuxfp::util
