#include "util/metrics.h"

#include <algorithm>
#include <sstream>

namespace linuxfp::util {

namespace {

thread_local PacketTrace* g_active_trace = nullptr;

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-' || c == '@' || c == '/') c = '_';
  }
  return out;
}

std::string format_number(double v) {
  // Counters and cycle sums are integers in disguise; print them as such.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Json Histogram::to_json() const {
  Json h = Json::object();
  h["count"] = static_cast<std::uint64_t>(stats_.count());
  h["mean"] = stats_.mean();
  h["stddev"] = stats_.stddev();
  h["min"] = stats_.min();
  h["max"] = stats_.max();
  if (!samples_.empty()) {
    h["p50"] = samples_.p50();
    h["p90"] = samples_.percentile(0.90);
    h["p99"] = samples_.p99();
  }
  return h;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_values_.emplace_back(0);
  Counter* slot = &counter_values_.back();
  counters_.emplace(name, slot);
  return slot;
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  histogram_values_.emplace_back(&histograms_enabled_);
  Histogram* slot = &histogram_values_.back();
  histograms_.emplace(name, slot);
  return slot;
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : counter_value(it->second);
}

void MetricsRegistry::reset() {
  for (Counter& v : counter_values_) v.store(0, std::memory_order_relaxed);
  for (auto& [name, hist] : histograms_) *hist = Histogram(&histograms_enabled_);
}

Json MetricsRegistry::to_json() const {
  Json out = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : counters_) {
    counters[name] = counter_value(value);
  }
  out["counters"] = counters;
  Json hists = Json::object();
  for (const auto& [name, hist] : histograms_) {
    if (hist->count() > 0) hists[name] = hist->to_json();
  }
  out["histograms"] = hists;
  return out;
}

std::string MetricsRegistry::prometheus_text(const std::string& prefix) const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    std::string metric = prefix + "_" + sanitize(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << " " << counter_value(value) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    if (hist->count() == 0) continue;
    std::string metric = prefix + "_" + sanitize(name);
    out << "# TYPE " << metric << " summary\n";
    const SampleSet& s = hist->samples();
    if (!s.empty()) {
      out << metric << "{quantile=\"0.5\"} " << format_number(s.p50()) << "\n";
      out << metric << "{quantile=\"0.99\"} " << format_number(s.p99())
          << "\n";
    }
    out << metric << "_sum "
        << format_number(hist->stats().mean() *
                         static_cast<double>(hist->stats().count()))
        << "\n";
    out << metric << "_count " << hist->stats().count() << "\n";
  }
  return out.str();
}

void StageSink::bind(MetricsRegistry* registry, std::string prefix) {
  registry_ = registry;
  prefix_ = std::move(prefix);
  slots_.assign(kSlots, Slot{});
  overflow_.clear();
}

StageSink::Slot& StageSink::slot_for(const char* stage) {
  // Pointer-identity hash: stage names are string literals, so the address
  // is a stable key and probing costs no string work at all.
  auto h = reinterpret_cast<std::uintptr_t>(stage);
  h ^= h >> 9;  // literals are aligned; mix the low bits
  std::size_t idx = static_cast<std::size_t>(h) & (kSlots - 1);
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    Slot& slot = slots_[(idx + probe) & (kSlots - 1)];
    if (slot.stage == stage) return slot;
    if (slot.stage == nullptr) {
      slot.stage = stage;
      std::string base = prefix_ + stage;
      slot.calls = registry_->counter(base + ".calls");
      slot.cycles = registry_->counter(base + ".cycles");
      slot.hist = registry_->histogram(base + ".cycles_hist");
      return slot;
    }
  }
  return overflow_slot_for(stage);
}

StageSink::Slot& StageSink::overflow_slot_for(const char* stage) {
  auto it = overflow_.find(stage);
  if (it != overflow_.end()) return it->second;
  Slot slot;
  slot.stage = stage;
  std::string base = prefix_ + stage;
  slot.calls = registry_->counter(base + ".calls");
  slot.cycles = registry_->counter(base + ".cycles");
  slot.hist = registry_->histogram(base + ".cycles_hist");
  return overflow_.emplace(stage, slot).first->second;
}

Json PacketTrace::to_json() const {
  Json out = Json::object();
  out["id"] = id;
  out["ifindex"] = static_cast<std::int64_t>(ifindex);
  out["device"] = device;
  out["fast_path"] = fast_path;
  out["verdict"] = verdict;
  out["total_cycles"] = total_cycles;
  Json events_json = Json::array();
  for (const TraceEvent& ev : events) {
    Json e = Json::object();
    e["layer"] = ev.layer;
    e["stage"] = ev.stage;
    if (!ev.detail.empty()) e["detail"] = ev.detail;
    e["cycles"] = ev.cycles;
    events_json.push_back(e);
  }
  out["events"] = events_json;
  return out;
}

PacketTrace* TraceRing::begin_packet(int ifindex, std::string device) {
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.emplace_back();
  PacketTrace& trace = ring_.back();
  trace.id = next_id_++;
  trace.ifindex = ifindex;
  trace.device = std::move(device);
  return &trace;
}

Json TraceRing::to_json() const {
  Json out = Json::array();
  for (const PacketTrace& trace : ring_) out.push_back(trace.to_json());
  return out;
}

PacketTrace* active_packet_trace() { return g_active_trace; }
void set_active_packet_trace(PacketTrace* trace) { g_active_trace = trace; }

}  // namespace linuxfp::util
