// Minimal JSON value model, parser and writer.
//
// LinuxFP models the synthesized processing graph as JSON (paper §IV-C2,
// Fig 3); this module provides the representation the TopologyManager emits
// and the Synthesizer ingests. Object key order is preserved (insertion
// order) because the processing-graph keys are ordered FPM stages.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace linuxfp::util {

class Json;
using JsonArray = std::vector<Json>;

// Insertion-ordered string map.
class JsonObject {
 public:
  Json& operator[](const std::string& key);
  const Json* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Json>> entries_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}                   // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}              // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}                 // NOLINT
  Json(std::int64_t i)                                            // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(std::uint64_t i)                                           // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}         // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {}     // NOLINT
  Json(JsonObject o) : type_(Type::kObject), obj_(std::move(o)) {}   // NOLINT

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(JsonArray{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(num_) : fallback;
  }
  const std::string& as_string() const { return str_; }

  // Object access. operator[] on a null value converts it to an object
  // (builder ergonomics); const lookup returns null for missing keys.
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  // Array access.
  void push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t index) const;

  const JsonObject& object_items() const { return obj_; }
  const JsonArray& array_items() const { return arr_; }

  // Serialization. indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  static Result<Json> parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace linuxfp::util
