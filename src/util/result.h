// Result<T>: a small expected-like type used across the code base for
// recoverable errors (parse failures, verifier rejections, lookup misses).
// We deliberately avoid exceptions on packet-processing paths; exceptions are
// reserved for programming errors (via LFP_CHECK) only.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace linuxfp::util {

// An error carries a short machine-readable code and a human message.
struct Error {
  std::string code;     // e.g. "verifier.out_of_bounds"
  std::string message;  // free-form detail

  static Error make(std::string code, std::string message) {
    return Error{std::move(code), std::move(message)};
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : value_(std::move(err)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(value_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> value_;
};

// Specialization-free void result.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)) {}  // NOLINT: implicit by design

  static Status ok_status() { return Status{}; }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(!ok());
    return *err_;
  }

 private:
  std::optional<Error> err_;
};

}  // namespace linuxfp::util
