#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace linuxfp::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit_log(LogLevel level, const std::string& component,
              const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}
}  // namespace detail

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::fprintf(stderr, "LFP_CHECK failed: %s at %s:%d %s\n", expr, file, line,
               message.c_str());
  std::abort();
}

}  // namespace linuxfp::util
