#include "util/fault.h"

#include <algorithm>
#include <cstdlib>

#include "util/strings.h"

namespace linuxfp::util {

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::arm(std::uint64_t seed) {
  armed_ = true;
  seed_ = seed;
  suppressed_ = 0;
  rng_ = Rng(seed);
  points_.clear();
}

void FaultInjector::disarm() {
  armed_ = false;
  suppressed_ = 0;
  points_.clear();
}

FaultInjector::Point& FaultInjector::point(std::string_view name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), Point{}).first;
  }
  return it->second;
}

void FaultInjector::fail_always(std::string_view p) {
  point(p).rule = Rule{Rule::Kind::kAlways, 0, 0.0};
}

void FaultInjector::fail_nth(std::string_view p, std::uint64_t nth) {
  point(p).rule = Rule{Rule::Kind::kNth, nth, 0.0};
}

void FaultInjector::fail_times(std::string_view p, std::uint64_t n) {
  point(p).rule = Rule{Rule::Kind::kTimes, n, 0.0};
}

void FaultInjector::fail_probability(std::string_view p, double prob) {
  point(p).rule = Rule{Rule::Kind::kProbability, 0, prob};
}

void FaultInjector::clear(std::string_view p) {
  auto it = points_.find(p);
  if (it != points_.end()) it->second.rule = Rule{};
}

void FaultInjector::clear_all() {
  for (auto& [name, pt] : points_) pt.rule = Rule{};
}

Status FaultInjector::install_schedule(const std::string& spec) {
  struct Parsed {
    std::string point;
    Rule rule;
  };
  std::vector<Parsed> parsed;
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), ',', ';');
  for (const std::string& entry : split(normalized, ';')) {
    std::string e = trim(entry);
    if (e.empty()) continue;
    auto colon = e.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Error::make("fault.spec", "expected <point>:<rule> in '" + e + "'");
    }
    Parsed p;
    p.point = e.substr(0, colon);
    std::string rule = e.substr(colon + 1);
    if (rule == "always") {
      p.rule = Rule{Rule::Kind::kAlways, 0, 0.0};
    } else if (rule.rfind("nth=", 0) == 0 || rule.rfind("times=", 0) == 0) {
      bool nth = rule.rfind("nth=", 0) == 0;
      unsigned long long n = 0;
      if (!parse_u64(rule.substr(rule.find('=') + 1), n) || n == 0) {
        return Error::make("fault.spec", "bad count in '" + e + "'");
      }
      p.rule = Rule{nth ? Rule::Kind::kNth : Rule::Kind::kTimes, n, 0.0};
    } else if (rule.rfind("p=", 0) == 0) {
      char* end = nullptr;
      std::string num = rule.substr(2);
      double prob = std::strtod(num.c_str(), &end);
      if (end == num.c_str() || *end != '\0' || prob < 0.0 || prob > 1.0) {
        return Error::make("fault.spec", "bad probability in '" + e + "'");
      }
      p.rule = Rule{Rule::Kind::kProbability, 0, prob};
    } else {
      return Error::make("fault.spec", "unknown rule '" + rule + "' in '" + e +
                                           "' (want always|nth=N|times=N|p=X)");
    }
    parsed.push_back(std::move(p));
  }
  for (Parsed& p : parsed) point(p.point).rule = p.rule;
  return {};
}

bool FaultInjector::should_fail(std::string_view p) {
  if (!armed_) return false;
  if (suppress_depth_ > 0) {
    ++suppressed_;
    return false;
  }
  Point& pt = point(p);
  ++pt.hits;
  bool fire = false;
  switch (pt.rule.kind) {
    case Rule::Kind::kNone:
      break;
    case Rule::Kind::kAlways:
      fire = true;
      break;
    case Rule::Kind::kNth:
      fire = pt.hits == pt.rule.n;
      break;
    case Rule::Kind::kTimes:
      // Counts fires, not hits: the rule burns down on the next n hits after
      // it was installed, regardless of how often the point was hit before.
      fire = pt.fires < pt.rule.n;
      break;
    case Rule::Kind::kProbability:
      fire = rng_.next_double() < pt.rule.p;
      break;
  }
  if (fire) ++pt.fires;
  return fire;
}

Status FaultInjector::check(std::string_view p) {
  if (should_fail(p)) {
    return Error::make("fault." + std::string(p),
                       "injected fault at " + std::string(p) + " (seed " +
                           std::to_string(seed_) + ")");
  }
  return {};
}

std::uint64_t FaultInjector::hits(std::string_view p) const {
  auto it = points_.find(p);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(std::string_view p) const {
  auto it = points_.find(p);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<FaultInjector::PointStats> FaultInjector::stats() const {
  std::vector<PointStats> out;
  out.reserve(points_.size());
  for (const auto& [name, pt] : points_) {
    out.push_back(PointStats{name, pt.hits, pt.fires});
  }
  return out;
}

}  // namespace linuxfp::util
