// Datapath observability layer: a process-wide-free, registry-based metric
// store plus a pwru-style per-packet trace ring.
//
// The paper motivates LinuxFP with a per-stage hotspot profile of the kernel
// datapath (Fig 1) and evaluates coherence and reaction time — both need the
// simulated datapath to be observable. Three pieces live here:
//
//  * MetricsRegistry — named monotonic counters (always on, ~one increment
//    per event) and opt-in latency Histograms (OnlineStats + SampleSet).
//    Counter storage is deque-backed so &counter is stable forever; hot
//    paths resolve a name once and bump through the cached pointer.
//  * StageSink — a fixed-size open-addressing cache keyed on the *address*
//    of a stage-name string literal, so CycleTrace::charge() costs two
//    pointer-indexed increments instead of a string lookup.
//  * PacketTrace / TraceRing — when tracing is enabled on a testbed, each
//    packet records the ordered (layer, stage, cycles) events it hit in the
//    slow path and in the eBPF VM, dumpable as JSON (tools/linuxfptrace).
//
// Counter naming scheme (see DESIGN.md):
//   slowpath.<stage>.calls / .cycles      one pair per CycleTrace stage
//   drop.<reason>                         per-reason drop counts
//   fib.lookups / fib.depth_total         FIB activity (depth via FibResult)
//   fastpath.<attachment>.<hook>.*        per-attachment verdicts/cycles
//   ebpf.helper.<name>.calls              per-helper-call counts
//   ebpf.map.{hits,misses}                map lookup outcomes
//   fpm.<name>.deployed                   per-FPM deploy counts
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/stats.h"

namespace linuxfp::util {

// Counter storage. Increments happen on every datapath packet — from the
// engine's worker pool concurrently — so counters are atomics bumped with
// relaxed ordering (a plain `lock add`; no fences, no ordering guarantees
// between counters, which monitoring never needs).
using Counter = std::atomic<std::uint64_t>;

// Relaxed increment: the only way hot paths should touch a Counter.
inline void bump(Counter* c, std::uint64_t n = 1) {
  c->fetch_add(n, std::memory_order_relaxed);
}

inline std::uint64_t counter_value(const Counter* c) {
  return c->load(std::memory_order_relaxed);
}

// Opt-in latency histogram: Welford summary plus retained samples for exact
// percentiles. record() is a no-op until the owning registry enables
// histograms, so always-on call sites stay cheap.
class Histogram {
 public:
  explicit Histogram(const bool* enabled) : enabled_(enabled) {}

  void record(double v) {
    if (!*enabled_) return;
    stats_.add(v);
    if (samples_.count() < kMaxSamples) samples_.add(v);
  }

  const OnlineStats& stats() const { return stats_; }
  const SampleSet& samples() const { return samples_; }
  std::size_t count() const { return stats_.count(); }

  Json to_json() const;

 private:
  static constexpr std::size_t kMaxSamples = 1 << 16;
  const bool* enabled_;
  OnlineStats stats_;
  SampleSet samples_;
};

// Named metric store. Threading contract: counter *creation* (counter(),
// histogram(), bind/set_metrics calls) is control-plane work and must be
// single-threaded; *increments* through previously obtained Counter pointers
// are safe from any number of threads (relaxed atomics). The engine pre-binds
// every counter before spawning its worker pool, and merges per-worker shards
// here at stop() — exactly the per-CPU-map aggregation discipline.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The returned pointer is stable for the registry's
  // lifetime — hot paths cache it and bump without any lookup.
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Value of a counter, 0 if it was never created.
  std::uint64_t value(const std::string& name) const;
  bool has_counter(const std::string& name) const {
    return counters_.count(name) > 0;
  }

  void set_histograms_enabled(bool on) { histograms_enabled_ = on; }
  bool histograms_enabled() const { return histograms_enabled_; }

  // When false, StageSink/Vm/Attachment emission sites skip their updates.
  // Counters themselves keep their values (no reset).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Zeroes every counter and drops every histogram's samples. Cached
  // counter pointers stay valid.
  void reset();

  std::size_t counter_count() const { return counters_.size(); }

  // {"counters": {name: value, ...}, "histograms": {name: {...}, ...}}
  // Names are sorted so output is deterministic.
  Json to_json() const;

  // Prometheus-style text exposition: one "<prefix>_<name> <value>" line per
  // counter ('.' and '-' become '_'), plus _count/_sum/quantile lines per
  // histogram.
  std::string prometheus_text(const std::string& prefix = "linuxfp") const;

 private:
  bool enabled_ = true;
  bool histograms_enabled_ = false;
  std::deque<Counter> counter_values_;         // stable addresses
  std::map<std::string, Counter*> counters_;
  std::deque<Histogram> histogram_values_;     // stable addresses
  std::map<std::string, Histogram*> histograms_;
};

// Per-stage counter cache for the cycle-charge hot path. Stage names are
// string literals, so identity-hashing the pointer is both correct per
// charge site and far cheaper than hashing the string. Distinct literals
// with equal text simply resolve to the same registry counters.
class StageSink {
 public:
  // Counters are created as "<prefix><stage>.calls|cycles" (+ a
  // "<prefix><stage>.cycles_hist" histogram, recorded only when the
  // registry has histograms enabled).
  void bind(MetricsRegistry* registry, std::string prefix);
  void unbind() { registry_ = nullptr; }
  bool bound() const { return registry_ != nullptr; }

  void charge(const char* stage, std::uint64_t cycles) {
    if (!registry_ || !registry_->enabled()) return;
    Slot& slot = slot_for(stage);
    bump(slot.calls);
    bump(slot.cycles, cycles);
    slot.hist->record(static_cast<double>(cycles));
  }

 private:
  struct Slot {
    const char* stage = nullptr;
    Counter* calls = nullptr;
    Counter* cycles = nullptr;
    Histogram* hist = nullptr;
  };

  Slot& slot_for(const char* stage);
  Slot& overflow_slot_for(const char* stage);

  static constexpr std::size_t kSlots = 128;  // power of two; ~30 stages live
  MetricsRegistry* registry_ = nullptr;
  std::string prefix_;
  std::vector<Slot> slots_;
  std::map<const char*, Slot> overflow_;  // cold fallback if the table fills
};

// One event in a packet's journey. layer/stage point at string literals;
// detail is only populated for verdict-ish events (allocates, but tracing is
// opt-in).
struct TraceEvent {
  const char* layer;  // "slow" | "ebpf" | "verdict"
  const char* stage;  // stage, helper, or verdict name
  std::string detail;
  std::uint64_t cycles = 0;
};

// The ordered trace of a single packet through the datapath.
struct PacketTrace {
  std::uint64_t id = 0;
  int ifindex = 0;
  std::string device;
  bool fast_path = false;
  std::string verdict;
  std::uint64_t total_cycles = 0;
  std::vector<TraceEvent> events;

  void add(const char* layer, const char* stage, std::uint64_t cycles,
           std::string detail = {}) {
    events.push_back(TraceEvent{layer, stage, std::move(detail), cycles});
  }

  Json to_json() const;
};

// Fixed-capacity ring of recent packet traces (pwru-style). begin_packet()
// evicts the oldest record if full, so the returned pointer stays valid
// until the next begin_packet().
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 64) : capacity_(capacity) {}

  PacketTrace* begin_packet(int ifindex, std::string device);
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  const PacketTrace& at(std::size_t i) const { return ring_[i]; }
  const PacketTrace& latest() const { return ring_.back(); }
  std::uint64_t packets_traced() const { return next_id_; }
  void clear() { ring_.clear(); }

  Json to_json() const;

 private:
  std::size_t capacity_;
  std::uint64_t next_id_ = 0;
  std::deque<PacketTrace> ring_;
};

// The packet currently being traced by *this thread*, if any. Thread-local:
// the slow-path thread can trace its packets while engine workers (which
// never enable tracing) always observe null, so the eBPF VM can append
// events without widening every interface between the kernel and the
// loader. Null means tracing is off — emission sites must check.
PacketTrace* active_packet_trace();
void set_active_packet_trace(PacketTrace* trace);

}  // namespace linuxfp::util
