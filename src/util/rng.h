// Deterministic xorshift64* RNG. All simulation randomness flows through
// explicitly seeded instances so every benchmark run is reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace linuxfp::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed ? seed : 1) {}

  std::uint64_t next_u64() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  std::uint32_t next_u32() {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Exponential with the given mean (used for service-time jitter tails).
  double next_exponential(double mean) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  // Lognormal via Box-Muller; mu/sigma are the parameters of the underlying
  // normal distribution.
  double next_lognormal(double mu, double sigma) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647 * u2);
    return std::exp(mu + sigma * z);
  }

 private:
  std::uint64_t state_;
};

}  // namespace linuxfp::util
