// Online statistics and sample-based percentile summaries used by every
// benchmark harness (mean, stddev via Welford, exact percentiles on retained
// samples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace linuxfp::util {

// Welford online mean/variance over a stream of doubles.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains all samples; exact quantiles. Suitable for the sample counts our
// latency simulations produce (<= a few million doubles).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  // q in [0,1]; nearest-rank on the sorted samples.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p99() const { return percentile(0.99); }
  double min() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fixed-format helpers for printing benchmark tables.
std::string format_double(double v, int precision);
std::string format_si_rate(double per_second);  // e.g. 1.77M, 23.4G

}  // namespace linuxfp::util
