// Small string utilities used by the tool front-ends (iproute2/brctl/iptables
// style command parsing) and formatting code.
#pragma once

#include <string>
#include <vector>

namespace linuxfp::util {

// Split on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(const std::string& s);

// Split on a single delimiter character; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

bool starts_with(const std::string& s, const std::string& prefix);
std::string to_lower(std::string s);
std::string trim(const std::string& s);

// Parses a non-negative integer; returns false on any non-digit input.
bool parse_u64(const std::string& s, unsigned long long& out);

}  // namespace linuxfp::util
