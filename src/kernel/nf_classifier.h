// Compiled rule classifier for the netfilter model (DESIGN.md §17).
//
// Production gateways carry 10k–100k iptables rules; the kernel's (and this
// repro's) linear scan is O(rules) per packet. This classifier compiles each
// chain into a tuple-space index at rule-change time: rules that match only
// on exact maskable dimensions (src/dst prefix, proto, ports, in/out
// interface) are grouped by their mask signature ("tuple"), and within a
// tuple the masked field values key a hash bucket holding the rule indices
// in ascending (first-match) order. A packet probe costs one hash lookup per
// tuple group instead of one compare per rule.
//
// Exactness contract: the classified path must be indistinguishable from the
// linear scan — same verdict, same first-match order, same per-rule hit
// counters, same rules_examined and ipset_probes accounting. Match kinds the
// compiler does not index (negations, ipset membership, conntrack state)
// stay on a per-chain *residual* list that is scanned linearly, but only
// over the index window [pos, best-tuple-candidate) the linear scan would
// itself have covered — so ipset probe counts and side effects line up
// bit-for-bit. Chains, jumps and RETURN are handled by the caller
// (Netfilter::eval_chain_classified) re-querying with an advancing position,
// mirroring eval_chain's traversal exactly.
//
// Coherence: the index records the netfilter generation it was built at;
// every Netfilter mutation re-syncs it (O(1) for appends, per-chain rebuild
// otherwise) and stamps the new generation. If the index is ever stale
// (generation mismatch), evaluate() falls back to the linear scan — and
// because the flowcache's generation vector already snapshots the same
// netfilter generation, every cached verdict that predates a rebuild is
// invalidated for free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/netfilter.h"

namespace linuxfp::kern {

// Per-query cost accounting (merged into NfEvalResult by the caller): the
// cost model charges tuple probes + residual compares instead of per-rule
// scan work when a result was produced by the classifier.
class NfClassifier {
 public:
  static constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);

  explicit NfClassifier(const Netfilter& nf) : nf_(nf) {}

  // Full rebuild of every chain index from the current rule tables.
  void build_all(std::uint64_t generation);

  // Incremental maintenance, called by the Netfilter mutators. Appends are
  // O(1) (bucket push_back keeps indices ascending); inserts/deletes rebuild
  // the one affected chain; flush/delete_chain drop its index.
  void on_append(const std::string& chain, std::uint64_t generation);
  void on_chain_mutated(const std::string& chain, std::uint64_t generation);
  void on_chain_removed(const std::string& chain, std::uint64_t generation);
  // Non-structural mutation (e.g. policy change): just re-stamp.
  void on_stamp(std::uint64_t generation) { built_generation_ = generation; }

  // Test hook: forget the built generation so evaluate() falls back to the
  // linear scan until the next mutation re-syncs the index.
  void invalidate() { built_generation_ = static_cast<std::uint64_t>(-1); }

  std::uint64_t built_generation() const { return built_generation_; }
  bool ready(std::uint64_t current_generation) const {
    return built_generation_ == current_generation;
  }

  // Index of the first rule >= pos in `chain` that matches `info`, or
  // kNoMatch. Accounts classifier work into stats.tuple_probes /
  // stats.residual_examined and (via the residual rule_matches calls)
  // stats.ipset_probes — exactly the probes the linear scan would have made
  // up to the returned index.
  std::size_t first_match(const Chain& chain, const NfPacketInfo& info,
                          const IpSetManager& ipsets, std::size_t pos,
                          NfEvalResult& stats) const;

  // --- introspection -------------------------------------------------------
  std::uint64_t full_builds() const { return full_builds_; }
  std::uint64_t chain_rebuilds() const { return chain_rebuilds_; }
  std::uint64_t incremental_appends() const { return incremental_appends_; }
  // Tuple groups in a chain's index (0 when the chain has no index yet).
  std::size_t tuple_count(const std::string& chain) const;
  std::size_t residual_count(const std::string& chain) const;

 private:
  // A tuple signature: which dimensions the group's rules require, and at
  // what prefix width. Rules whose match uses only these dimensions (no
  // negation, no ipset, no conntrack state) are indexable.
  struct TupleSig {
    std::uint8_t src_len = 255;  // 255 = src not matched
    std::uint8_t dst_len = 255;
    bool has_proto = false;
    bool has_sport = false;
    bool has_dport = false;
    bool has_in_if = false;
    bool has_out_if = false;

    bool operator==(const TupleSig& o) const {
      return src_len == o.src_len && dst_len == o.dst_len &&
             has_proto == o.has_proto && has_sport == o.has_sport &&
             has_dport == o.has_dport && has_in_if == o.has_in_if &&
             has_out_if == o.has_out_if;
    }
  };

  struct TupleGroup {
    TupleSig sig;
    // Masked-field hash -> ascending rule indices. Collisions are tolerated:
    // candidates are verified with the real rule_matches before use.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  struct ChainIndex {
    std::vector<TupleGroup> groups;
    std::vector<std::uint32_t> residual;  // ascending indices
  };

  static bool indexable(const RuleMatch& m);
  static TupleSig signature_of(const RuleMatch& m);
  static std::uint64_t key_of_rule(const RuleMatch& m, const TupleSig& sig);
  static std::uint64_t key_of_packet(const NfPacketInfo& info,
                                     const TupleSig& sig);
  void index_rule(ChainIndex& index, const Rule& rule, std::uint32_t rule_idx);
  void rebuild_chain(const std::string& chain);

  const Netfilter& nf_;
  std::map<std::string, ChainIndex> chains_;
  std::uint64_t built_generation_ = static_cast<std::uint64_t>(-1);
  std::uint64_t full_builds_ = 0;
  std::uint64_t chain_rebuilds_ = 0;
  std::uint64_t incremental_appends_ = 0;
};

}  // namespace linuxfp::kern
