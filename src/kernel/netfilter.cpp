#include "kernel/netfilter.h"

#include "kernel/nf_classifier.h"
#include "util/logging.h"

namespace linuxfp::kern {

const char* nf_hook_name(NfHook hook) {
  switch (hook) {
    case NfHook::kPrerouting: return "PREROUTING";
    case NfHook::kInput: return "INPUT";
    case NfHook::kForward: return "FORWARD";
    case NfHook::kOutput: return "OUTPUT";
    case NfHook::kPostrouting: return "POSTROUTING";
  }
  return "?";
}

const char* Netfilter::builtin_chain_for(NfHook hook) {
  switch (hook) {
    case NfHook::kInput: return "INPUT";
    case NfHook::kForward: return "FORWARD";
    case NfHook::kOutput: return "OUTPUT";
    default: return nullptr;  // filter table has no PRE/POSTROUTING
  }
}

Netfilter::Netfilter() {
  for (const char* name : {"INPUT", "FORWARD", "OUTPUT"}) {
    Chain c;
    c.name = name;
    c.builtin = true;
    chains_[name] = std::move(c);
  }
}

Netfilter::~Netfilter() = default;

void Netfilter::set_classifier_enabled(bool enabled) {
  if (!enabled) {
    classifier_.reset();
    return;
  }
  if (!classifier_) classifier_ = std::make_unique<NfClassifier>(*this);
  classifier_->build_all(generation());
}

util::Status Netfilter::new_chain(const std::string& name) {
  if (chains_.count(name)) {
    return util::Error::make("ipt.exists", "chain exists: " + name);
  }
  Chain c;
  c.name = name;
  chains_[name] = std::move(c);
  ++generation_;
  if (classifier_) classifier_->on_stamp(generation());
  return {};
}

util::Status Netfilter::delete_chain(const std::string& name) {
  auto it = chains_.find(name);
  if (it == chains_.end()) {
    return util::Error::make("ipt.missing", "no such chain: " + name);
  }
  if (it->second.builtin) {
    return util::Error::make("ipt.builtin", "cannot delete builtin chain");
  }
  if (!it->second.rules.empty()) {
    return util::Error::make("ipt.nonempty", "chain not empty: " + name);
  }
  chains_.erase(it);
  ++generation_;
  if (classifier_) classifier_->on_chain_removed(name, generation());
  return {};
}

util::Status Netfilter::set_policy(const std::string& chain,
                                   NfVerdict policy) {
  Chain* c = find_chain(chain);
  if (!c) return util::Error::make("ipt.missing", "no such chain: " + chain);
  if (!c->builtin) {
    return util::Error::make("ipt.policy", "policy only on builtin chains");
  }
  c->policy = policy;
  ++generation_;
  if (classifier_) classifier_->on_stamp(generation());
  return {};
}

util::Status Netfilter::flush(const std::string& chain) {
  Chain* c = find_chain(chain);
  if (!c) return util::Error::make("ipt.missing", "no such chain: " + chain);
  c->rules.clear();
  ++generation_;
  if (classifier_) classifier_->on_chain_mutated(chain, generation());
  return {};
}

util::Status Netfilter::append_rule(const std::string& chain, Rule rule) {
  Chain* c = find_chain(chain);
  if (!c) return util::Error::make("ipt.missing", "no such chain: " + chain);
  if (rule.target == RuleTarget::kJump && !chains_.count(rule.jump_chain)) {
    return util::Error::make("ipt.missing",
                             "no such jump target: " + rule.jump_chain);
  }
  c->rules.push_back(std::move(rule));
  ++generation_;
  if (classifier_) classifier_->on_append(chain, generation());
  return {};
}

util::Status Netfilter::insert_rule(const std::string& chain,
                                    std::size_t index, Rule rule) {
  Chain* c = find_chain(chain);
  if (!c) return util::Error::make("ipt.missing", "no such chain: " + chain);
  if (index > c->rules.size()) {
    return util::Error::make("ipt.index", "rule index out of range");
  }
  c->rules.insert(c->rules.begin() + static_cast<std::ptrdiff_t>(index),
                  std::move(rule));
  ++generation_;
  if (classifier_) classifier_->on_chain_mutated(chain, generation());
  return {};
}

util::Status Netfilter::delete_rule(const std::string& chain,
                                    std::size_t index) {
  Chain* c = find_chain(chain);
  if (!c) return util::Error::make("ipt.missing", "no such chain: " + chain);
  if (index >= c->rules.size()) {
    return util::Error::make("ipt.index", "rule index out of range");
  }
  c->rules.erase(c->rules.begin() + static_cast<std::ptrdiff_t>(index));
  ++generation_;
  if (classifier_) classifier_->on_chain_mutated(chain, generation());
  return {};
}

Chain* Netfilter::find_chain(const std::string& name) {
  auto it = chains_.find(name);
  return it == chains_.end() ? nullptr : &it->second;
}

const Chain* Netfilter::find_chain(const std::string& name) const {
  auto it = chains_.find(name);
  return it == chains_.end() ? nullptr : &it->second;
}

std::vector<const Chain*> Netfilter::dump() const {
  std::vector<const Chain*> out;
  for (const auto& [name, chain] : chains_) out.push_back(&chain);
  return out;
}

std::size_t Netfilter::rule_count(const std::string& chain) const {
  const Chain* c = find_chain(chain);
  if (!c) return 0;
  std::size_t n = c->rules.size();
  for (const Rule& r : c->rules) {
    if (r.target == RuleTarget::kJump) n += rule_count(r.jump_chain);
  }
  return n;
}

bool Netfilter::has_any_rules_on(NfHook hook) const {
  const char* name = builtin_chain_for(hook);
  if (!name) return false;
  const Chain* c = find_chain(name);
  if (!c) return false;
  return !c->rules.empty() || c->policy == NfVerdict::kDrop;
}

bool Netfilter::rule_matches(const Rule& rule, const NfPacketInfo& info,
                             const IpSetManager& ipsets,
                             NfEvalResult& stats) {
  const RuleMatch& m = rule.match;
  if (m.src) {
    bool hit = m.src->contains(info.src);
    if (hit == m.src_negated) return false;
  }
  if (m.dst) {
    bool hit = m.dst->contains(info.dst);
    if (hit == m.dst_negated) return false;
  }
  if (m.proto && *m.proto != info.proto) return false;
  if (m.sport && *m.sport != info.sport) return false;
  if (m.dport && *m.dport != info.dport) return false;
  if (!m.in_if.empty() && m.in_if != info.in_if) return false;
  if (!m.out_if.empty() && m.out_if != info.out_if) return false;
  if (!m.match_set.empty()) {
    const IpSet* set = ipsets.find(m.match_set);
    if (!set) return false;
    ++stats.ipset_probes;
    if (!set->test(m.set_match_src ? info.src : info.dst)) return false;
  }
  if (!m.ct_state.empty()) {
    // Untracked packets (ct_state < 0) match no state rule, like packets
    // nf_conntrack classifies INVALID.
    if (m.ct_state == "NEW" && info.ct_state != 0) return false;
    if (m.ct_state == "ESTABLISHED" && info.ct_state != 1) return false;
  }
  return true;
}

NfVerdict Netfilter::eval_chain(const Chain& chain, const NfPacketInfo& info,
                                const IpSetManager& ipsets,
                                NfEvalResult& stats, int depth,
                                bool& decided) const {
  LFP_CHECK_MSG(depth < 16, "iptables jump depth exceeded");
  for (const Rule& rule : chain.rules) {
    ++stats.rules_examined;
    if (!rule_matches(rule, info, ipsets, stats)) continue;
    rule.hits.fetch_add(1, std::memory_order_relaxed);
    rule.hit_bytes.fetch_add(info.bytes, std::memory_order_relaxed);
    switch (rule.target) {
      case RuleTarget::kAccept:
        decided = true;
        return NfVerdict::kAccept;
      case RuleTarget::kDrop:
        decided = true;
        return NfVerdict::kDrop;
      case RuleTarget::kReturn:
        decided = false;
        return NfVerdict::kAccept;
      case RuleTarget::kJump: {
        const Chain* target = find_chain(rule.jump_chain);
        LFP_CHECK_MSG(target != nullptr, "dangling jump target");
        bool sub_decided = false;
        NfVerdict v =
            eval_chain(*target, info, ipsets, stats, depth + 1, sub_decided);
        if (sub_decided) {
          decided = true;
          return v;
        }
        break;  // RETURN or fall-through: continue this chain
      }
    }
  }
  decided = false;
  return NfVerdict::kAccept;
}

// Classified twin of eval_chain: identical traversal semantics (first-match
// order, hit counters on matched jump/return rules, depth-limited jumps),
// but each "next matching rule" question is answered by the tuple-space
// index instead of a scan. rules_examined is reconstructed in O(1) from the
// index distance so the accounting matches the linear path exactly.
NfVerdict Netfilter::eval_chain_classified(const Chain& chain,
                                           const NfPacketInfo& info,
                                           const IpSetManager& ipsets,
                                           NfEvalResult& stats, int depth,
                                           bool& decided) const {
  LFP_CHECK_MSG(depth < 16, "iptables jump depth exceeded");
  std::size_t pos = 0;
  while (true) {
    std::size_t idx =
        classifier_->first_match(chain, info, ipsets, pos, stats);
    if (idx == NfClassifier::kNoMatch) {
      stats.rules_examined += chain.rules.size() - pos;
      decided = false;
      return NfVerdict::kAccept;
    }
    stats.rules_examined += idx - pos + 1;
    const Rule& rule = chain.rules[idx];
    rule.hits.fetch_add(1, std::memory_order_relaxed);
    rule.hit_bytes.fetch_add(info.bytes, std::memory_order_relaxed);
    switch (rule.target) {
      case RuleTarget::kAccept:
        decided = true;
        return NfVerdict::kAccept;
      case RuleTarget::kDrop:
        decided = true;
        return NfVerdict::kDrop;
      case RuleTarget::kReturn:
        decided = false;
        return NfVerdict::kAccept;
      case RuleTarget::kJump: {
        const Chain* target = find_chain(rule.jump_chain);
        LFP_CHECK_MSG(target != nullptr, "dangling jump target");
        bool sub_decided = false;
        NfVerdict v = eval_chain_classified(*target, info, ipsets, stats,
                                            depth + 1, sub_decided);
        if (sub_decided) {
          decided = true;
          return v;
        }
        pos = idx + 1;  // RETURN or fall-through: continue this chain
        break;
      }
    }
  }
}

NfEvalResult Netfilter::evaluate(NfHook hook, const NfPacketInfo& info,
                                 const IpSetManager& ipsets) const {
  NfEvalResult result;
  const char* name = builtin_chain_for(hook);
  if (!name) return result;
  const Chain* chain = find_chain(name);
  if (!chain) return result;
  bool decided = false;
  NfVerdict v;
  if (classifier_ && classifier_->ready(generation())) {
    result.compiled = true;
    v = eval_chain_classified(*chain, info, ipsets, result, 0, decided);
  } else {
    // No classifier, or it is stale relative to the rule tables (a test
    // forced staleness): the linear scan is always correct.
    v = eval_chain(*chain, info, ipsets, result, 0, decided);
  }
  result.verdict = decided ? v : chain->policy;
  return result;
}

}  // namespace linuxfp::kern
