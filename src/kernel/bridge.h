// 802.1D bridge model: learning FDB with aging, per-port STP states with a
// simplified spanning-tree protocol (root election, root/designated port
// roles), per-port VLAN filtering, and flooding on FDB miss.
//
// In the LinuxFP decomposition (paper Table I) the *fast path* performs
// parsing, FDB lookup and forwarding; the slow path (this class, invoked via
// Kernel) handles learning refresh on misses, aging, flooding and STP.
// The FDB itself is the shared state exposed to the fast path through the
// bpf_fdb_lookup helper.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/mac.h"

namespace linuxfp::kern {

enum class StpState { kDisabled, kBlocking, kListening, kLearning, kForwarding };

const char* stp_state_name(StpState s);

// 802.1D bridge identifier: priority (high 16 bits) + MAC.
struct BridgeId {
  std::uint16_t priority = 0x8000;
  net::MacAddr mac;

  std::uint64_t as_u64() const {
    return (std::uint64_t{priority} << 48) | mac.as_u64();
  }
  bool operator<(const BridgeId& o) const { return as_u64() < o.as_u64(); }
  bool operator==(const BridgeId& o) const { return as_u64() == o.as_u64(); }
};

// Configuration BPDU contents (simplified: no timers inside the BPDU).
struct Bpdu {
  BridgeId root;
  std::uint32_t root_path_cost = 0;
  BridgeId sender;
  std::uint16_t sender_port = 0;
};

struct FdbKey {
  net::MacAddr mac;
  std::uint16_t vlan = 0;

  bool operator==(const FdbKey&) const = default;
};

struct FdbKeyHash {
  std::size_t operator()(const FdbKey& k) const noexcept {
    return std::hash<net::MacAddr>{}(k.mac) ^ (std::size_t{k.vlan} << 1);
  }
};

struct FdbEntry {
  int port_ifindex = 0;
  std::uint64_t updated_ns = 0;
  bool is_static = false;  // added via `bridge fdb add`, never ages
};

struct BridgePort {
  int ifindex = 0;
  StpState state = StpState::kForwarding;
  std::uint32_t path_cost = 100;
  std::uint16_t port_id = 0;
  // VLAN filtering configuration (only consulted when the bridge has
  // vlan_filtering enabled).
  std::uint16_t pvid = 1;
  std::set<std::uint16_t> allowed_vlans{1};
  std::set<std::uint16_t> untagged_vlans{1};

  bool allows_vlan(std::uint16_t vid) const {
    return allowed_vlans.count(vid) > 0;
  }
  bool can_forward() const { return state == StpState::kForwarding; }
  bool can_learn() const {
    return state == StpState::kLearning || state == StpState::kForwarding;
  }
};

class Bridge {
 public:
  // `shared_gen` (optional) is a kernel-owned generation counter shared by
  // every bridge in the netns; the bridge bumps it whenever forwarding state
  // (ports, FDB, STP, VLAN config) changes so fast-path caches holding
  // memoized bridge decisions can revalidate cheaply. Bridges constructed
  // without one (unit tests) simply skip the bumps.
  Bridge(int ifindex, const net::MacAddr& mac,
         std::atomic<std::uint64_t>* shared_gen = nullptr)
      : ifindex_(ifindex), shared_gen_(shared_gen) {
    id_.mac = mac;
    root_ = id_;
  }

  int ifindex() const { return ifindex_; }
  const BridgeId& bridge_id() const { return id_; }
  void set_priority(std::uint16_t priority);

  // --- ports -------------------------------------------------------------
  void add_port(int port_ifindex);
  void del_port(int port_ifindex);
  bool has_port(int port_ifindex) const;
  BridgePort* port(int port_ifindex);
  const BridgePort* port(int port_ifindex) const;
  const std::map<int, BridgePort>& ports() const { return ports_; }

  // --- FDB -----------------------------------------------------------------
  // Lookup without side effects (used by the fast path helper).
  const FdbEntry* fdb_lookup(const net::MacAddr& mac, std::uint16_t vlan) const;
  // Learning: insert/refresh the source MAC on an ingress port.
  void fdb_learn(const net::MacAddr& mac, std::uint16_t vlan, int port_ifindex,
                 std::uint64_t now_ns);
  void fdb_add_static(const net::MacAddr& mac, std::uint16_t vlan,
                      int port_ifindex);
  bool fdb_delete(const net::MacAddr& mac, std::uint16_t vlan);
  // Removes dynamic entries older than aging_time; returns count removed.
  std::size_t fdb_age(std::uint64_t now_ns);
  std::size_t fdb_size() const { return fdb_.size(); }
  std::vector<std::pair<FdbKey, FdbEntry>> fdb_dump() const;

  std::uint64_t aging_time_ns() const { return aging_time_ns_; }
  void set_aging_time_ns(std::uint64_t ns) { aging_time_ns_ = ns; }

  // --- VLAN filtering --------------------------------------------------------
  bool vlan_filtering() const { return vlan_filtering_; }
  void set_vlan_filtering(bool enabled) {
    if (vlan_filtering_ == enabled) return;
    vlan_filtering_ = enabled;
    bump_generation();
  }

  // --- STP ---------------------------------------------------------------
  bool stp_enabled() const { return stp_enabled_; }
  void set_stp_enabled(bool enabled);

  bool is_root() const { return root_ == id_; }
  const BridgeId& root() const { return root_; }
  int root_port() const { return root_port_; }

  // Processes a received configuration BPDU (slow-path only). Returns true
  // if any port state changed (which triggers re-synthesis in LinuxFP).
  bool process_bpdu(int port_ifindex, const Bpdu& bpdu);

  // BPDUs this bridge should emit this hello interval (root emits on all
  // designated ports; non-root relays on designated ports).
  std::vector<std::pair<int, Bpdu>> generate_bpdus() const;

  // Advances listening->learning->forwarding transitions (forward delay).
  void stp_tick(std::uint64_t now_ns);

  // Callers that mutate port configuration through the non-const port()
  // accessor (e.g. `bridge vlan add`) must call this afterwards so cached
  // fast-path decisions observe the change.
  void note_config_changed() { bump_generation(); }

 private:
  void recompute_roles();
  void bump_generation() {
    if (shared_gen_) shared_gen_->fetch_add(1, std::memory_order_relaxed);
  }

  int ifindex_;
  std::atomic<std::uint64_t>* shared_gen_ = nullptr;
  BridgeId id_;
  std::map<int, BridgePort> ports_;
  std::unordered_map<FdbKey, FdbEntry, FdbKeyHash> fdb_;
  std::uint64_t aging_time_ns_ = 300ull * 1000 * 1000 * 1000;  // 300 s
  bool vlan_filtering_ = false;

  bool stp_enabled_ = false;
  BridgeId root_;
  std::uint32_t root_path_cost_ = 0;
  int root_port_ = 0;
  // Best BPDU heard per port (port priority vector).
  std::map<int, Bpdu> port_best_;
  // Ports in transitional STP states and when they entered them.
  std::map<int, std::uint64_t> transition_start_;
  std::uint64_t forward_delay_ns_ = 15ull * 1000 * 1000 * 1000;
};

// The destination MAC 01:80:C2:00:00:00 used by STP BPDUs.
net::MacAddr stp_multicast_mac();

}  // namespace linuxfp::kern
