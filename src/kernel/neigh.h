// Neighbor (ARP) table, modeling the kernel neighbour subsystem: per-device
// IPv4 -> MAC entries with reachability state, plus the small queue of
// packets parked while resolution is in flight (Linux queues up to
// unres_qlen packets per pending neighbour).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipaddr.h"
#include "net/mac.h"
#include "net/packet.h"

namespace linuxfp::kern {

enum class NeighState { kIncomplete, kReachable, kStale, kPermanent };

const char* neigh_state_name(NeighState s);

struct NeighEntry {
  net::Ipv4Addr ip;
  net::MacAddr mac;
  int ifindex = 0;
  NeighState state = NeighState::kReachable;
  std::uint64_t updated_ns = 0;
  std::vector<net::Packet> pending;  // packets awaiting resolution
};

class NeighborTable {
 public:
  static constexpr std::size_t kMaxPending = 3;  // unres_qlen_pkts analogue

  // Inserts/updates an entry (learning from ARP or `ip neigh add`).
  NeighEntry& update(net::Ipv4Addr ip, const net::MacAddr& mac, int ifindex,
                     NeighState state, std::uint64_t now_ns);

  // Creates (or returns) an incomplete entry for an in-flight resolution.
  NeighEntry& create_incomplete(net::Ipv4Addr ip, int ifindex,
                                std::uint64_t now_ns);

  const NeighEntry* lookup(net::Ipv4Addr ip) const;
  NeighEntry* lookup_mutable(net::Ipv4Addr ip);

  bool erase(net::Ipv4Addr ip);

  // Marks entries not refreshed within ttl_ns as stale; returns count.
  std::size_t age(std::uint64_t now_ns, std::uint64_t ttl_ns);

  std::vector<const NeighEntry*> dump() const;
  std::size_t size() const { return entries_.size(); }

  // Bumped only when an entry's resolution-relevant fields (mac, ifindex,
  // state, existence) actually change — pure refreshes of updated_ns keep
  // the generation stable so fast-path caches are not needlessly flushed.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  std::unordered_map<net::Ipv4Addr, NeighEntry> entries_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace linuxfp::kern
