#include "kernel/neigh.h"

namespace linuxfp::kern {

const char* neigh_state_name(NeighState s) {
  switch (s) {
    case NeighState::kIncomplete: return "INCOMPLETE";
    case NeighState::kReachable: return "REACHABLE";
    case NeighState::kStale: return "STALE";
    case NeighState::kPermanent: return "PERMANENT";
  }
  return "?";
}

NeighEntry& NeighborTable::update(net::Ipv4Addr ip, const net::MacAddr& mac,
                                  int ifindex, NeighState state,
                                  std::uint64_t now_ns) {
  auto [it, inserted] = entries_.try_emplace(ip);
  NeighEntry& e = it->second;
  // PERMANENT entries (static `ip neigh add ... nud permanent`) are never
  // downgraded by learning.
  NeighState effective =
      (!inserted && e.state == NeighState::kPermanent &&
       state != NeighState::kPermanent)
          ? e.state
          : state;
  bool changed = inserted || e.mac != mac || e.ifindex != ifindex ||
                 e.state != effective;
  e.ip = ip;
  e.mac = mac;
  e.ifindex = ifindex;
  e.state = effective;
  e.updated_ns = now_ns;
  if (changed) generation_.fetch_add(1, std::memory_order_relaxed);
  return e;
}

NeighEntry& NeighborTable::create_incomplete(net::Ipv4Addr ip, int ifindex,
                                             std::uint64_t now_ns) {
  auto it = entries_.find(ip);
  if (it != entries_.end()) return it->second;
  NeighEntry& e = entries_[ip];
  e.ip = ip;
  e.ifindex = ifindex;
  e.state = NeighState::kIncomplete;
  e.updated_ns = now_ns;
  generation_.fetch_add(1, std::memory_order_relaxed);
  return e;
}

const NeighEntry* NeighborTable::lookup(net::Ipv4Addr ip) const {
  auto it = entries_.find(ip);
  return it == entries_.end() ? nullptr : &it->second;
}

NeighEntry* NeighborTable::lookup_mutable(net::Ipv4Addr ip) {
  auto it = entries_.find(ip);
  return it == entries_.end() ? nullptr : &it->second;
}

bool NeighborTable::erase(net::Ipv4Addr ip) {
  if (entries_.erase(ip) == 0) return false;
  generation_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t NeighborTable::age(std::uint64_t now_ns, std::uint64_t ttl_ns) {
  std::size_t aged = 0;
  for (auto& [ip, e] : entries_) {
    if (e.state == NeighState::kReachable && now_ns - e.updated_ns > ttl_ns) {
      e.state = NeighState::kStale;
      ++aged;
    }
  }
  if (aged > 0) generation_.fetch_add(1, std::memory_order_relaxed);
  return aged;
}

std::vector<const NeighEntry*> NeighborTable::dump() const {
  std::vector<const NeighEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [ip, e] : entries_) out.push_back(&e);
  return out;
}

}  // namespace linuxfp::kern
