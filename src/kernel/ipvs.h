// ipvs model: the Linux virtual-server load balancer (paper Table I, last
// row — "left as future work" there, prototyped in §VIII; implemented here
// as the reproduction's extension).
//
// Decomposition per Table I: the fast path performs parsing, rewriting and
// conntrack lookup/update (through bpf_ct_lookup, which exposes the DNAT
// mapping); connection *scheduling* — picking a backend for a NEW flow —
// stays in the slow path, which also creates the conntrack entry both paths
// subsequently share.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipaddr.h"
#include "util/result.h"

namespace linuxfp::kern {

enum class IpvsScheduler {
  kRoundRobin,   // rr
  kSourceHash,   // sh (client affinity without conntrack)
};

struct RealServer {
  net::Ipv4Addr addr;
  std::uint16_t port = 0;
  std::uint32_t weight = 1;
  mutable std::uint64_t connections = 0;  // scheduled flows (stats)
};

struct VirtualService {
  net::Ipv4Addr vip;
  std::uint16_t port = 0;
  std::uint8_t proto = 6;  // TCP by default, like ipvsadm -t
  IpvsScheduler scheduler = IpvsScheduler::kRoundRobin;
  std::vector<RealServer> backends;
  mutable std::size_t rr_cursor = 0;
};

class Ipvs {
 public:
  util::Status add_service(net::Ipv4Addr vip, std::uint16_t port,
                           std::uint8_t proto, IpvsScheduler scheduler);
  util::Status del_service(net::Ipv4Addr vip, std::uint16_t port,
                           std::uint8_t proto);
  util::Status add_backend(net::Ipv4Addr vip, std::uint16_t port,
                           std::uint8_t proto, net::Ipv4Addr backend,
                           std::uint16_t backend_port, std::uint32_t weight);
  util::Status del_backend(net::Ipv4Addr vip, std::uint16_t port,
                           std::uint8_t proto, net::Ipv4Addr backend,
                           std::uint16_t backend_port);

  const VirtualService* match(net::Ipv4Addr dst, std::uint8_t proto,
                              std::uint16_t dport) const;

  // Scheduling (slow path only): picks a backend for a new flow. Weighted
  // round-robin or source-hash, per the service's scheduler.
  const RealServer* schedule(const VirtualService& svc,
                             net::Ipv4Addr client) const;

  bool empty() const { return services_.empty(); }
  std::size_t service_count() const { return services_.size(); }
  const std::vector<VirtualService>& services() const { return services_; }

  // Monotonic config generation (controller change detection).
  std::uint64_t generation() const { return generation_; }

 private:
  VirtualService* find(net::Ipv4Addr vip, std::uint16_t port,
                       std::uint8_t proto);

  std::vector<VirtualService> services_;
  std::uint64_t generation_ = 0;
};

}  // namespace linuxfp::kern
