// ipset model: named sets of addresses/networks with O(1)/O(prefixes) match,
// referenced by iptables rules via `-m set --match-set`. The paper's virtual
// gateway evaluation (Fig 8, Table IV) relies on aggregating a 100-entry
// blacklist into a single ipset-backed rule.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/ipaddr.h"
#include "util/result.h"

namespace linuxfp::kern {

enum class IpSetType { kHashIp, kHashNet };

// Default hash size limit, as in the kernel (`ipset create ... maxelem N`).
inline constexpr std::size_t kIpSetDefaultMaxElem = 65536;

class IpSet {
 public:
  // `shared_gen` (optional) is the owning IpSetManager's generation counter;
  // member changes bump it so fast-path caches that memoized a set-match
  // outcome revalidate. Directly-constructed sets (tests) skip the bumps.
  IpSet(std::string name, IpSetType type,
        std::size_t maxelem = kIpSetDefaultMaxElem,
        std::atomic<std::uint64_t>* shared_gen = nullptr)
      : name_(std::move(name)), type_(type), maxelem_(maxelem),
        shared_gen_(shared_gen) {}

  const std::string& name() const { return name_; }
  IpSetType type() const { return type_; }
  std::size_t maxelem() const { return maxelem_; }

  util::Status add(const net::Ipv4Prefix& member);
  bool del(const net::Ipv4Prefix& member);
  bool test(net::Ipv4Addr addr) const;

  std::size_t size() const;
  std::vector<net::Ipv4Prefix> dump() const;

 private:
  void bump_generation() {
    if (shared_gen_) shared_gen_->fetch_add(1, std::memory_order_relaxed);
  }

  std::string name_;
  IpSetType type_;
  std::size_t maxelem_;
  std::atomic<std::uint64_t>* shared_gen_ = nullptr;
  std::set<net::Ipv4Addr> ips_;          // hash:ip
  std::set<net::Ipv4Prefix> nets_;       // hash:net (linear by /len buckets)
  std::set<std::uint8_t> net_lens_;      // which prefix lengths exist
};

class IpSetManager {
 public:
  util::Status create(const std::string& name, IpSetType type,
                      std::size_t maxelem = kIpSetDefaultMaxElem);
  util::Status destroy(const std::string& name);
  IpSet* find(const std::string& name);
  const IpSet* find(const std::string& name) const;
  std::vector<const IpSet*> dump() const;

  // Bumped on set create/destroy and on any member change in any owned set.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  std::map<std::string, std::unique_ptr<IpSet>> sets_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace linuxfp::kern
