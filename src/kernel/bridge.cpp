#include "kernel/bridge.h"

#include <algorithm>

#include "util/logging.h"

namespace linuxfp::kern {

const char* stp_state_name(StpState s) {
  switch (s) {
    case StpState::kDisabled: return "disabled";
    case StpState::kBlocking: return "blocking";
    case StpState::kListening: return "listening";
    case StpState::kLearning: return "learning";
    case StpState::kForwarding: return "forwarding";
  }
  return "?";
}

net::MacAddr stp_multicast_mac() {
  return net::MacAddr({0x01, 0x80, 0xC2, 0x00, 0x00, 0x00});
}

void Bridge::set_priority(std::uint16_t priority) {
  id_.priority = priority;
  if (stp_enabled_) recompute_roles();
  bump_generation();
}

void Bridge::add_port(int port_ifindex) {
  if (ports_.count(port_ifindex)) return;
  BridgePort p;
  p.ifindex = port_ifindex;
  p.port_id = static_cast<std::uint16_t>(ports_.size() + 1);
  // Without STP ports go straight to forwarding (Linux default when
  // stp_state=0); with STP new ports start listening.
  p.state = stp_enabled_ ? StpState::kListening : StpState::kForwarding;
  ports_[port_ifindex] = p;
  if (stp_enabled_) {
    transition_start_[port_ifindex] = 0;
    recompute_roles();
  }
  bump_generation();
}

void Bridge::del_port(int port_ifindex) {
  bool existed = ports_.erase(port_ifindex) > 0;
  port_best_.erase(port_ifindex);
  transition_start_.erase(port_ifindex);
  // Flush FDB entries learned on the removed port.
  for (auto it = fdb_.begin(); it != fdb_.end();) {
    if (it->second.port_ifindex == port_ifindex) {
      it = fdb_.erase(it);
      existed = true;
    } else {
      ++it;
    }
  }
  if (stp_enabled_) recompute_roles();
  if (existed) bump_generation();
}

bool Bridge::has_port(int port_ifindex) const {
  return ports_.count(port_ifindex) > 0;
}

BridgePort* Bridge::port(int port_ifindex) {
  auto it = ports_.find(port_ifindex);
  return it == ports_.end() ? nullptr : &it->second;
}

const BridgePort* Bridge::port(int port_ifindex) const {
  auto it = ports_.find(port_ifindex);
  return it == ports_.end() ? nullptr : &it->second;
}

const FdbEntry* Bridge::fdb_lookup(const net::MacAddr& mac,
                                   std::uint16_t vlan) const {
  auto it = fdb_.find(FdbKey{mac, vlan});
  return it == fdb_.end() ? nullptr : &it->second;
}

void Bridge::fdb_learn(const net::MacAddr& mac, std::uint16_t vlan,
                       int port_ifindex, std::uint64_t now_ns) {
  if (mac.is_multicast()) return;  // never learn multicast sources
  const BridgePort* p = port(port_ifindex);
  if (!p || !p->can_learn()) return;
  // Refreshing the timestamp of an entry already on this port is not a
  // forwarding-state change and must not bump the generation — the hot path
  // learns on every packet, and a per-packet bump would self-invalidate any
  // cached bridge decision. Only a new station or a port migration bumps.
  auto it = fdb_.find(FdbKey{mac, vlan});
  if (it != fdb_.end()) {
    FdbEntry& e = it->second;
    if (e.is_static) return;
    bool moved = e.port_ifindex != port_ifindex;
    e.port_ifindex = port_ifindex;
    e.updated_ns = now_ns;
    if (moved) bump_generation();
    return;
  }
  FdbEntry& e = fdb_[FdbKey{mac, vlan}];
  e.port_ifindex = port_ifindex;
  e.updated_ns = now_ns;
  bump_generation();
}

void Bridge::fdb_add_static(const net::MacAddr& mac, std::uint16_t vlan,
                            int port_ifindex) {
  FdbEntry& e = fdb_[FdbKey{mac, vlan}];
  e.port_ifindex = port_ifindex;
  e.is_static = true;
  bump_generation();
}

bool Bridge::fdb_delete(const net::MacAddr& mac, std::uint16_t vlan) {
  if (fdb_.erase(FdbKey{mac, vlan}) == 0) return false;
  bump_generation();
  return true;
}

std::size_t Bridge::fdb_age(std::uint64_t now_ns) {
  std::size_t removed = 0;
  for (auto it = fdb_.begin(); it != fdb_.end();) {
    if (!it->second.is_static &&
        now_ns - it->second.updated_ns > aging_time_ns_) {
      it = fdb_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) bump_generation();
  return removed;
}

std::vector<std::pair<FdbKey, FdbEntry>> Bridge::fdb_dump() const {
  std::vector<std::pair<FdbKey, FdbEntry>> out(fdb_.begin(), fdb_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (!(a.first.mac == b.first.mac)) return a.first.mac < b.first.mac;
    return a.first.vlan < b.first.vlan;
  });
  return out;
}

void Bridge::set_stp_enabled(bool enabled) {
  if (stp_enabled_ == enabled) return;
  stp_enabled_ = enabled;
  if (enabled) {
    root_ = id_;
    root_path_cost_ = 0;
    root_port_ = 0;
    for (auto& [ifi, p] : ports_) {
      p.state = StpState::kListening;
      transition_start_[ifi] = 0;
    }
  } else {
    for (auto& [ifi, p] : ports_) p.state = StpState::kForwarding;
    port_best_.clear();
    transition_start_.clear();
    root_ = id_;
    root_port_ = 0;
  }
  bump_generation();
}

bool Bridge::process_bpdu(int port_ifindex, const Bpdu& bpdu) {
  if (!stp_enabled_ || !has_port(port_ifindex)) return false;
  // Keep the best (superior) BPDU heard on this port. Priority vector
  // comparison: root id, then root path cost, then sender id, sender port.
  auto superior = [](const Bpdu& a, const Bpdu& b) {
    if (!(a.root == b.root)) return a.root < b.root;
    if (a.root_path_cost != b.root_path_cost) {
      return a.root_path_cost < b.root_path_cost;
    }
    if (!(a.sender == b.sender)) return a.sender < b.sender;
    return a.sender_port < b.sender_port;
  };
  auto it = port_best_.find(port_ifindex);
  if (it == port_best_.end() || superior(bpdu, it->second)) {
    port_best_[port_ifindex] = bpdu;
  } else {
    return false;  // inferior to what we already hold
  }

  BridgeId old_root = root_;
  int old_root_port = root_port_;
  std::vector<StpState> old_states;
  for (const auto& [ifi, p] : ports_) old_states.push_back(p.state);

  recompute_roles();

  std::vector<StpState> new_states;
  for (const auto& [ifi, p] : ports_) new_states.push_back(p.state);
  bool changed = !(old_root == root_) || old_root_port != root_port_ ||
                 old_states != new_states;
  if (changed) bump_generation();
  return changed;
}

void Bridge::recompute_roles() {
  // Root selection: best of own id and every port's heard root.
  root_ = id_;
  root_path_cost_ = 0;
  root_port_ = 0;
  for (const auto& [ifi, bpdu] : port_best_) {
    const BridgePort* p = port(ifi);
    if (!p) continue;
    std::uint32_t cost = bpdu.root_path_cost + p->path_cost;
    if (bpdu.root < root_ ||
        (bpdu.root == root_ && root_port_ != 0 && cost < root_path_cost_)) {
      root_ = bpdu.root;
      root_path_cost_ = cost;
      root_port_ = ifi;
    }
  }

  // Port roles: root port forwards; a port is designated (forwards) unless a
  // better bridge is designated on that segment (we heard a BPDU advertising
  // the same root with lower cost / better sender) — then it blocks.
  for (auto& [ifi, p] : ports_) {
    StpState target;
    if (!stp_enabled_) {
      target = StpState::kForwarding;
    } else if (ifi == root_port_) {
      target = StpState::kForwarding;
    } else {
      auto heard = port_best_.find(ifi);
      bool we_are_designated = true;
      if (heard != port_best_.end()) {
        const Bpdu& b = heard->second;
        if (b.root == root_) {
          if (b.root_path_cost < root_path_cost_) we_are_designated = false;
          else if (b.root_path_cost == root_path_cost_ && b.sender < id_) {
            we_are_designated = false;
          }
        }
      }
      target = we_are_designated ? StpState::kForwarding : StpState::kBlocking;
    }

    if (target == StpState::kForwarding && p.state == StpState::kBlocking) {
      // Must transition through listening/learning (handled by stp_tick);
      // enter listening now.
      p.state = StpState::kListening;
      transition_start_[ifi] = 0;
    } else if (target == StpState::kBlocking) {
      p.state = StpState::kBlocking;
      transition_start_.erase(ifi);
    }
  }
}

std::vector<std::pair<int, Bpdu>> Bridge::generate_bpdus() const {
  std::vector<std::pair<int, Bpdu>> out;
  if (!stp_enabled_) return out;
  for (const auto& [ifi, p] : ports_) {
    if (ifi == root_port_) continue;  // root port receives, not sends
    if (p.state == StpState::kDisabled) continue;
    Bpdu b;
    b.root = root_;
    b.root_path_cost = root_path_cost_;
    b.sender = id_;
    b.sender_port = p.port_id;
    out.emplace_back(ifi, b);
  }
  return out;
}

void Bridge::stp_tick(std::uint64_t now_ns) {
  if (!stp_enabled_) return;
  bool transitioned = false;
  for (auto& [ifi, p] : ports_) {
    if (p.state != StpState::kListening && p.state != StpState::kLearning) {
      continue;
    }
    auto it = transition_start_.find(ifi);
    if (it == transition_start_.end()) {
      transition_start_[ifi] = now_ns;
      continue;
    }
    if (it->second == 0) {
      it->second = now_ns;
      continue;
    }
    if (now_ns - it->second >= forward_delay_ns_) {
      if (p.state == StpState::kListening) {
        p.state = StpState::kLearning;
      } else {
        p.state = StpState::kForwarding;
      }
      it->second = now_ns;
      transitioned = true;
    }
  }
  if (transitioned) bump_generation();
}

}  // namespace linuxfp::kern
