// The slow path: the default Linux packet processing pipeline. Every stage
// charges the cost model, so the benchmarks' "Linux" baseline emerges from
// this code, and the stage trace reproduces the hot-spot observation of
// paper Fig 1.
#include "kernel/kernel.h"

#include "net/checksum.h"
#include "util/logging.h"

namespace linuxfp::kern {

namespace {
constexpr int kMaxRxDepth = 16;

net::FlowKey flow_key_of(const net::ParsedPacket& info) {
  net::FlowKey k;
  k.src_ip = info.ip_src;
  k.dst_ip = info.ip_dst;
  k.proto = info.ip_proto;
  k.src_port = info.src_port;
  k.dst_port = info.dst_port;
  return k;
}
}  // namespace

bool Kernel::shadow_begin(std::uint64_t cookie) {
  if (shadow_observer_ == nullptr || cookie == 0) return false;
  if (active_shadow_cookie_ != 0) return false;  // nested rx; skip this one
  active_shadow_cookie_ = cookie;
  shadow_emissions_.clear();
  return true;
}

void Kernel::shadow_resolve(const RxSummary& summary) {
  std::uint64_t cookie = active_shadow_cookie_;
  active_shadow_cookie_ = 0;
  std::vector<ShadowEmission> emissions;
  emissions.swap(shadow_emissions_);
  if (shadow_observer_) {
    shadow_observer_->on_shadow_resolved(cookie, summary, std::move(emissions));
  }
}

RxSummary Kernel::rx(int ifindex, net::Packet&& pkt, CycleTrace& trace) {
  // Attribute stage charges to this kernel while the packet is here; a veth
  // hop into a peer kernel re-binds on entry and restores on the way out.
  util::StageSink* prev_sink = trace.sink();
  trace.bind_sink(metrics_.enabled() ? &stage_sink_ : nullptr);
  // A shadow capture armed inside this rx (by the guard, at the XDP/TC hook)
  // resolves when this call completes; one armed by an outer rx (loopback /
  // veth re-entry) keeps accumulating and resolves there.
  bool shadow_was_active = active_shadow_cookie_ != 0;

  // The outermost rx() of a traced packet opens the trace record; nested
  // hops (veth, vxlan, XDP_TX bounces) keep appending to the same record so
  // the dump shows the full journey in order.
  util::PacketTrace* started = nullptr;
  if (trace_ring_ && !trace.packet_trace()) {
    const NetDevice* in_dev = dev(ifindex);
    started = trace_ring_->begin_packet(ifindex, in_dev ? in_dev->name() : "?");
    trace.bind_packet_trace(started);
    util::set_active_packet_trace(started);
  }

  RxSummary summary = rx_inner(ifindex, std::move(pkt), trace);

  if (started) {
    started->fast_path = summary.fast_path;
    started->verdict =
        summary.drop == Drop::kNone ? "ok" : drop_name(summary.drop);
    started->total_cycles = trace.total();
    // Dropped packets got their verdict event at the count_drop site (in
    // path order); close out the delivered/forwarded case the same way.
    if (summary.drop == Drop::kNone) started->add("verdict", "ok", 0);
    trace.bind_packet_trace(nullptr);
    util::set_active_packet_trace(nullptr);
  }
  if (!shadow_was_active && active_shadow_cookie_ != 0) {
    shadow_resolve(summary);
  }
  trace.bind_sink(prev_sink);
  return summary;
}

RxSummary Kernel::rx_from_engine(int ifindex, net::Packet&& pkt,
                                 CycleTrace& trace) {
  util::StageSink* prev_sink = trace.sink();
  trace.bind_sink(metrics_.enabled() ? &stage_sink_ : nullptr);
  // Engine packets get the same pwru-style trace records as rx(): the worker
  // already ran the XDP hook, so the record starts at the slow-path handoff.
  util::PacketTrace* started = nullptr;
  if (trace_ring_ && !trace.packet_trace()) {
    const NetDevice* in_dev = dev(ifindex);
    started = trace_ring_->begin_packet(ifindex, in_dev ? in_dev->name() : "?");
    trace.bind_packet_trace(started);
    util::set_active_packet_trace(started);
  }
  if (pkt.gso_segs() > 1) {
    if (auto* t = trace.packet_trace()) {
      t->add("gro", "superpacket", 0,
             std::to_string(pkt.gso_segs()) + " segments");
    }
  }
  // Deferred shadow adoption: an engine worker recorded this packet's
  // fast-path verdict under pkt.guard_cookie; the slow-path traversal here is
  // the authoritative run the guard compares against.
  bool shadow_began = shadow_begin(pkt.guard_cookie);
  NetDevice* d = dev(ifindex);
  RxSummary summary;
  if (!d || !d->is_up()) {
    summary = drop(Drop::kLinkDown);
  } else {
    pkt.ingress_ifindex = static_cast<std::uint32_t>(ifindex);
    summary = stack_rx(*d, std::move(pkt), trace);
  }
  if (shadow_began) shadow_resolve(summary);
  if (started) {
    started->fast_path = summary.fast_path;
    started->verdict =
        summary.drop == Drop::kNone ? "ok" : drop_name(summary.drop);
    started->total_cycles = trace.total();
    if (summary.drop == Drop::kNone) started->add("verdict", "ok", 0);
    trace.bind_packet_trace(nullptr);
    util::set_active_packet_trace(nullptr);
  }
  trace.bind_sink(prev_sink);
  return summary;
}

RxSummary Kernel::rx_inner(int ifindex, net::Packet&& pkt, CycleTrace& trace) {
  NetDevice* d = dev(ifindex);
  if (!d || !d->is_up()) return drop(Drop::kLinkDown);
  LFP_CHECK_MSG(rx_depth_ < kMaxRxDepth, "rx recursion loop");
  ++rx_depth_;
  struct DepthGuard {
    int& depth;
    ~DepthGuard() { --depth; }
  } guard{rx_depth_};

  d->stats().rx_packets++;
  d->stats().rx_bytes += pkt.size();
  pkt.ingress_ifindex = ifindex;

  if (d->kind() == DevKind::kPhysical) {
    trace.charge("driver_rx", cost_.driver_rx);
    trace.charge_bytes("driver_rx_bytes", cost_.per_byte_rx, pkt.size());
  }

  // --- XDP hook: earliest interception point ------------------------------
  if (PacketProgram* prog = d->xdp_prog()) {
    auto result = prog->run(pkt, ifindex);
    trace.charge("xdp_prog", result.cycles + cost_.xdp_hook_overhead);
    switch (result.verdict) {
      case PacketProgram::Verdict::kDrop:
        ++counters_.fast_path_packets;
        count_drop(Drop::kXdpDrop);
        return RxSummary{true, Drop::kXdpDrop};
      case PacketProgram::Verdict::kTx:
        ++counters_.fast_path_packets;
        dev_xmit(ifindex, std::move(pkt), trace);
        return RxSummary{true, Drop::kNone};
      case PacketProgram::Verdict::kRedirect:
        ++counters_.fast_path_packets;
        dev_xmit(result.redirect_ifindex, std::move(pkt), trace);
        return RxSummary{true, Drop::kNone};
      case PacketProgram::Verdict::kUserspace:
        // AF_XDP: the attachment already queued the frame on the socket.
        ++counters_.fast_path_packets;
        return RxSummary{true, Drop::kNone};
      case PacketProgram::Verdict::kAborted:
        LFP_WARN("kernel") << "XDP program aborted on " << d->name();
        [[fallthrough]];
      case PacketProgram::Verdict::kPass:
        break;  // continue into the stack
    }
  }

  return stack_rx(*d, std::move(pkt), trace);
}

RxSummary Kernel::stack_rx(NetDevice& d, net::Packet&& pkt,
                           CycleTrace& trace) {
  // A GRO super-packet traverses the linear stages once but stands for
  // gso_segs() wire packets; every packet counter scales by that so a
  // coalesced run's counters exactly equal per-segment processing.
  counters_.slow_path_packets += pkt.gso_segs();
  trace.charge("skb_alloc", cost_.skb_alloc);
  trace.charge("netif_receive", cost_.netif_receive);
  trace.charge_bytes("skb_bytes", cost_.per_byte_slow, pkt.size());

  // --- TC ingress hook -----------------------------------------------------
  if (PacketProgram* prog = d.tc_ingress_prog()) {
    auto result = prog->run(pkt, d.ifindex());
    // tc_path_extra models GRO/flow-dissection and sk_buff conversion work
    // a physical NIC's RX path performs before cls_bpf — cost the TC fast
    // path cannot avoid but XDP does (Table VII gap). It is sunk cost only
    // when the program terminally handles the packet; on PASS the stack
    // performs that work as part of its normal accounting, and virtual
    // devices (veth) skip it entirely.
    bool terminal = result.verdict == PacketProgram::Verdict::kDrop ||
                    result.verdict == PacketProgram::Verdict::kTx ||
                    result.verdict == PacketProgram::Verdict::kRedirect;
    std::uint64_t hook_cost =
        cost_.tc_hook_overhead +
        (terminal && d.kind() == DevKind::kPhysical ? cost_.tc_path_extra
                                                    : 0);
    trace.charge("tc_ingress_prog", result.cycles + hook_cost);
    switch (result.verdict) {
      case PacketProgram::Verdict::kDrop:
        ++counters_.fast_path_packets;
        count_drop(Drop::kTcDrop);
        return RxSummary{true, Drop::kTcDrop};
      case PacketProgram::Verdict::kTx:
      case PacketProgram::Verdict::kRedirect:
        ++counters_.fast_path_packets;
        dev_xmit(result.verdict == PacketProgram::Verdict::kTx
                     ? d.ifindex()
                     : result.redirect_ifindex,
                 std::move(pkt), trace);
        return RxSummary{true, Drop::kNone};
      case PacketProgram::Verdict::kUserspace:
        ++counters_.fast_path_packets;
        return RxSummary{true, Drop::kNone};
      case PacketProgram::Verdict::kAborted:
      case PacketProgram::Verdict::kPass:
        break;
    }
  }

  // --- bridge port? ---------------------------------------------------------
  if (d.master() != 0) {
    Bridge* br = bridge(d.master());
    if (br) return bridge_rx(*br, d, std::move(pkt), trace);
  }

  // --- protocol demux --------------------------------------------------------
  if (pkt.size() < net::kEthHdrLen) return drop(Drop::kMalformed);
  net::EthernetView eth(pkt.data());
  std::uint16_t type = eth.ethertype();
  if (type == net::kEtherTypeArp) {
    return arp_rx(d, std::move(pkt), trace);
  }
  if (type == net::kEtherTypeIpv4 ||
      (type == net::kEtherTypeVlan && pkt.size() >= net::kEthHdrLen + 4)) {
    return ip_rcv(d, std::move(pkt), trace);
  }
  return drop(Drop::kNoHandler);
}

RxSummary Kernel::bridge_rx(Bridge& br, NetDevice& port_dev,
                            net::Packet&& pkt, CycleTrace& trace) {
  trace.charge("br_handle_frame", cost_.br_handle_frame);
  BridgePort* port = br.port(port_dev.ifindex());
  if (!port) return drop(Drop::kMalformed);

  if (pkt.size() < net::kEthHdrLen) return drop(Drop::kMalformed);
  net::EthernetView eth(pkt.data());
  net::MacAddr dst = eth.dst();
  net::MacAddr src = eth.src();

  // STP BPDUs are link-local control traffic: always slow path, consumed.
  if (dst == stp_multicast_mac()) {
    ++counters_.bpdus_processed;
    return RxSummary{false, Drop::kNone};
  }

  // Port state gating.
  if (port->state == StpState::kBlocking ||
      port->state == StpState::kListening ||
      port->state == StpState::kDisabled) {
    return drop(Drop::kStpBlocked);
  }

  // VLAN determination + filtering.
  std::uint16_t vid = 0;
  bool tagged = eth.ethertype() == net::kEtherTypeVlan;
  if (br.vlan_filtering()) {
    if (tagged) {
      net::VlanView vlan(pkt.data() + 14);
      vid = vlan.vid();
    } else {
      vid = port->pvid;
    }
    if (!port->allows_vlan(vid)) return drop(Drop::kVlanFiltered);
  }

  // Learning.
  if (port->can_learn()) {
    trace.charge("br_fdb_learn", cost_.br_fdb_learn);
    br.fdb_learn(src, vid, port_dev.ifindex(), now_ns_);
  }

  if (port->state == StpState::kLearning) return drop(Drop::kStpBlocked);

  NetDevice* br_dev = dev(br.ifindex());

  // Destined to the bridge itself (routing on the bridge interface, or a
  // unicast ARP reply to the bridge's own address).
  if (br_dev && dst == br_dev->mac()) {
    trace.charge("br_pass_up", cost_.br_forward);
    if (eth.ethertype() == net::kEtherTypeArp) {
      return arp_rx(*br_dev, std::move(pkt), trace);
    }
    return ip_rcv(*br_dev, std::move(pkt), trace);
  }

  // Broadcast/multicast: flood + deliver up.
  if (dst.is_broadcast() || dst.is_multicast()) {
    ++counters_.flooded;
    for (const auto& [ifi, p] : br.ports()) {
      if (ifi == port_dev.ifindex() || !p.can_forward()) continue;
      if (br.vlan_filtering() && !p.allows_vlan(vid)) continue;
      trace.charge("br_flood", cost_.br_flood_per_port);
      net::Packet clone = pkt;
      dev_xmit(ifi, std::move(clone), trace);
    }
    if (br_dev && br_dev->is_up()) {
      net::EthernetView e2(pkt.data());
      if (e2.ethertype() == net::kEtherTypeArp) {
        return arp_rx(*br_dev, std::move(pkt), trace);
      }
      if (e2.ethertype() == net::kEtherTypeIpv4) {
        return ip_rcv(*br_dev, std::move(pkt), trace);
      }
    }
    return RxSummary{false, Drop::kNone};
  }

  // Unicast: FDB lookup.
  trace.charge("br_fdb_lookup", cost_.br_fdb_lookup);
  const FdbEntry* entry = br.fdb_lookup(dst, vid);
  if (entry) {
    if (entry->port_ifindex == port_dev.ifindex()) {
      return drop(Drop::kNotForUs);  // would hairpin; Linux drops by default
    }
    const BridgePort* out = br.port(entry->port_ifindex);
    if (!out || !out->can_forward()) return drop(Drop::kStpBlocked);
    if (br.vlan_filtering() && !out->allows_vlan(vid)) {
      return drop(Drop::kVlanFiltered);
    }
    // br_netfilter: with bridge-nf-call-iptables=1 (mandatory on Kubernetes
    // nodes) bridged IPv4 traffic traverses the iptables FORWARD chain and
    // conntrack even though it is never routed.
    if (sysctl("net.bridge.bridge-nf-call-iptables") != 0) {
      auto parsed = net::parse_packet(pkt);
      if (parsed && parsed->has_ipv4) {
        int ct_state = -1;
        if (conntrack_enabled_ && parsed->has_ports) {
          net::FlowKey key{parsed->ip_src, parsed->ip_dst, parsed->ip_proto,
                           parsed->src_port, parsed->dst_port};
          auto ct = conntrack_.lookup_or_create(key, now_ns_);
          trace.charge("conntrack", ct.created ? cost_.conntrack_new
                                               : cost_.conntrack_lookup);
          ct_state = ct.entry->state == CtState::kEstablished ? 1 : 0;
        }
        if (netfilter_.has_any_rules_on(NfHook::kForward)) {
          NfPacketInfo nfi;
          nfi.src = parsed->ip_src;
          nfi.dst = parsed->ip_dst;
          nfi.proto = parsed->ip_proto;
          nfi.sport = parsed->src_port;
          nfi.dport = parsed->dst_port;
          nfi.in_if = port_dev.name();
          const NetDevice* out_dev = dev(entry->port_ifindex);
          nfi.out_if = out_dev ? out_dev->name() : "";
          nfi.bytes = pkt.size();
          nfi.ct_state = ct_state;
          auto result = netfilter_.evaluate(NfHook::kForward, nfi, ipsets_);
          trace.charge("br_nf_forward",
                       nf_eval_cost(result, cost_.nf_hook_base,
                                    cost_.ipt_per_rule, cost_.ipt_clf_probe,
                                    cost_.ipset_lookup));
          if (result.verdict == NfVerdict::kDrop) return drop(Drop::kPolicy);
        }
      }
    }
    trace.charge("br_forward", cost_.br_forward);
    ++counters_.bridged;
    dev_xmit(entry->port_ifindex, std::move(pkt), trace);
    return RxSummary{false, Drop::kNone};
  }

  // FDB miss: flood (slow-path corner case by design).
  ++counters_.flooded;
  for (const auto& [ifi, p] : br.ports()) {
    if (ifi == port_dev.ifindex() || !p.can_forward()) continue;
    if (br.vlan_filtering() && !p.allows_vlan(vid)) continue;
    trace.charge("br_flood", cost_.br_flood_per_port);
    net::Packet clone = pkt;
    dev_xmit(ifi, std::move(clone), trace);
  }
  return RxSummary{false, Drop::kNone};
}

RxSummary Kernel::ip_rcv(NetDevice& in_dev, net::Packet&& pkt,
                         CycleTrace& trace) {
  trace.charge("ip_rcv", cost_.ip_rcv);
  auto parsed = net::parse_packet(pkt);
  if (!parsed || !parsed->has_ipv4) return drop(Drop::kMalformed);
  net::Ipv4View ip(pkt.data() + parsed->l3_offset);
  if (!ip.checksum_valid()) return drop(Drop::kMalformed);

  // VXLAN termination: UDP to our VTEP port on an address we own.
  if (parsed->ip_proto == net::kIpProtoUdp && parsed->has_ports &&
      parsed->dst_port == net::kVxlanPort && local_addr_owner(parsed->ip_dst)) {
    return vxlan_rx(in_dev, std::move(pkt), *parsed, trace);
  }

  // ipvs director: traffic addressed to a virtual service is scheduled and
  // DNATed before (instead of) local delivery.
  if (!ipvs_.empty() && parsed->has_ports && !parsed->ip_fragment) {
    trace.charge("ipvs_match", cost_.ipvs_match);
    const VirtualService* svc =
        ipvs_.match(parsed->ip_dst, parsed->ip_proto, parsed->dst_port);
    if (svc) return ipvs_in(in_dev, std::move(pkt), *parsed, *svc, trace);
  }

  if (local_addr_owner(parsed->ip_dst) || parsed->ip_dst.is_broadcast() ||
      in_dev.has_addr(parsed->ip_dst)) {
    return local_deliver(in_dev, std::move(pkt), *parsed, trace);
  }

  if (!ip_forward_enabled()) return drop(Drop::kNotForUs);
  return ip_forward(in_dev, std::move(pkt), *parsed, trace);
}

RxSummary Kernel::ipvs_in(NetDevice& in_dev, net::Packet&& pkt,
                          const net::ParsedPacket& info,
                          const VirtualService& svc, CycleTrace& trace) {
  (void)in_dev;
  net::FlowKey key{info.ip_src, info.ip_dst, info.ip_proto, info.src_port,
                   info.dst_port};
  auto ct = conntrack_.lookup_or_create(key, now_ns_);
  trace.charge("conntrack",
               ct.created ? cost_.conntrack_new : cost_.conntrack_lookup);

  if (!ct.entry->dnat_addr) {
    // NEW flow: scheduling is control-plane work (paper Table I).
    trace.charge("ipvs_schedule", cost_.ipvs_schedule);
    const RealServer* backend = ipvs_.schedule(svc, info.ip_src);
    if (!backend) return drop(Drop::kNoRoute);
    conntrack_.set_dnat(*ct.entry, backend->addr, backend->port);
  }

  // DNAT rewrite: destination becomes the scheduled backend.
  trace.charge("nat_rewrite", cost_.nat_rewrite);
  net::Ipv4View ip(pkt.data() + info.l3_offset);
  ip.set_dst(*ct.entry->dnat_addr);
  ip.update_checksum();
  net::store_be16(pkt.data() + info.l4_offset + 2, ct.entry->dnat_port);

  // Route toward the backend.
  trace.charge("fib_lookup", cost_.fib_lookup);
  auto hit = fib_.lookup(*ct.entry->dnat_addr);
  note_fib_lookup(hit);
  if (!hit) return drop(Drop::kNoRoute);
  net::Ipv4View ttl_view(pkt.data() + info.l3_offset);
  if (ttl_view.ttl() <= 1) return drop(Drop::kTtlExceeded);
  ttl_view.decrement_ttl();
  counters_.forwarded += pkt.gso_segs();
  Drop outcome =
      resolve_and_xmit(std::move(pkt), hit->next_hop, hit->route.oif, trace);
  return RxSummary{false, outcome};
}

RxSummary Kernel::ip_forward(NetDevice& in_dev, net::Packet&& pkt,
                             const net::ParsedPacket& info,
                             CycleTrace& trace) {
  // ipvs reverse path: replies from a scheduled backend are un-NATed (source
  // rewritten back to the VIP) before normal forwarding to the client.
  if (!ipvs_.empty() && info.has_ports) {
    net::FlowKey key{info.ip_src, info.ip_dst, info.ip_proto, info.src_port,
                     info.dst_port};
    auto ct = conntrack_.lookup(key, now_ns_);
    trace.charge("conntrack", cost_.conntrack_lookup);
    if (ct.entry && ct.is_reply_direction && ct.entry->dnat_addr &&
        info.ip_src == *ct.entry->dnat_addr &&
        info.src_port == ct.entry->dnat_port) {
      trace.charge("nat_rewrite", cost_.nat_rewrite);
      net::Ipv4View ip(pkt.data() + info.l3_offset);
      ip.set_src(ct.entry->original.dst_ip);  // the VIP
      ip.update_checksum();
      net::store_be16(pkt.data() + info.l4_offset,
                      ct.entry->original.dst_port);
    }
  }

  // Routing decision.
  trace.charge("fib_lookup", cost_.fib_lookup);
  auto hit = fib_.lookup(info.ip_dst);
  note_fib_lookup(hit);
  if (!hit) return drop(Drop::kNoRoute);

  // Conntrack runs at PREROUTING, before the filter table sees the packet,
  // so state matches observe the up-to-date flow state.
  int ct_state = -1;
  if (conntrack_enabled_ && info.has_ports) {
    auto ct = conntrack_.lookup_or_create(flow_key_of(info), now_ns_);
    trace.charge("conntrack",
                 ct.created ? cost_.conntrack_new : cost_.conntrack_lookup);
    ct_state = ct.entry->state == CtState::kEstablished ? 1 : 0;
  }

  // netfilter FORWARD hook.
  if (netfilter_.has_any_rules_on(NfHook::kForward)) {
    NfPacketInfo nfi;
    nfi.src = info.ip_src;
    nfi.dst = info.ip_dst;
    nfi.proto = info.ip_proto;
    nfi.sport = info.src_port;
    nfi.dport = info.dst_port;
    nfi.in_if = in_dev.name();
    const NetDevice* out_dev = dev(hit->route.oif);
    nfi.out_if = out_dev ? out_dev->name() : "";
    nfi.bytes = pkt.size();
    nfi.ct_state = ct_state;
    auto result = netfilter_.evaluate(NfHook::kForward, nfi, ipsets_);
    trace.charge("nf_forward",
                 nf_eval_cost(result, cost_.nf_hook_base, cost_.ipt_per_rule,
                              cost_.ipt_clf_probe, cost_.ipset_lookup));
    if (result.verdict == NfVerdict::kDrop) return drop(Drop::kPolicy);
  }

  trace.charge("ip_forward", cost_.ip_forward);
  net::Ipv4View ip(pkt.data() + info.l3_offset);
  if (ip.ttl() <= 1) return drop(Drop::kTtlExceeded);
  ip.decrement_ttl();

  counters_.forwarded += pkt.gso_segs();
  Drop outcome =
      resolve_and_xmit(std::move(pkt), hit->next_hop, hit->route.oif, trace);
  return RxSummary{false, outcome};
}

RxSummary Kernel::local_deliver(NetDevice& in_dev, net::Packet&& pkt,
                                const net::ParsedPacket& info,
                                CycleTrace& trace) {
  int ct_state = -1;
  if (conntrack_enabled_ && info.has_ports) {
    auto ct = conntrack_.lookup_or_create(flow_key_of(info), now_ns_);
    trace.charge("conntrack",
                 ct.created ? cost_.conntrack_new : cost_.conntrack_lookup);
    ct_state = ct.entry->state == CtState::kEstablished ? 1 : 0;
  }

  // netfilter INPUT hook.
  if (netfilter_.has_any_rules_on(NfHook::kInput)) {
    NfPacketInfo nfi;
    nfi.src = info.ip_src;
    nfi.dst = info.ip_dst;
    nfi.proto = info.ip_proto;
    nfi.sport = info.src_port;
    nfi.dport = info.dst_port;
    nfi.in_if = in_dev.name();
    nfi.bytes = pkt.size();
    nfi.ct_state = ct_state;
    auto result = netfilter_.evaluate(NfHook::kInput, nfi, ipsets_);
    trace.charge("nf_input",
                 nf_eval_cost(result, cost_.nf_hook_base, cost_.ipt_per_rule,
                              cost_.ipt_clf_probe, cost_.ipset_lookup));
    if (result.verdict == NfVerdict::kDrop) return drop(Drop::kPolicy);
  }

  trace.charge("ip_local_deliver", cost_.ip_local_deliver);

  // ICMP echo server.
  if (info.ip_proto == net::kIpProtoIcmp) {
    if (pkt.size() >= info.l4_offset + net::kIcmpHdrLen) {
      net::IcmpView icmp(pkt.data() + info.l4_offset);
      if (icmp.type() == 8) {
        trace.charge("icmp", cost_.icmp_process);
        icmp_echo_reply(in_dev, pkt, info, trace);
        counters_.locally_delivered += pkt.gso_segs();
        return RxSummary{false, Drop::kNone};
      }
    }
    counters_.locally_delivered += pkt.gso_segs();
    return RxSummary{false, Drop::kNone};
  }

  // L4 socket delivery.
  if (info.has_ports) {
    auto it = l4_handlers_.find({info.ip_proto, info.dst_port});
    if (it != l4_handlers_.end()) {
      trace.charge("socket_queue", cost_.socket_queue);
      counters_.locally_delivered += pkt.gso_segs();
      it->second(*this, info, pkt, trace);
      return RxSummary{false, Drop::kNone};
    }
  }
  counters_.locally_delivered += pkt.gso_segs();
  return RxSummary{false, Drop::kNone};
}

RxSummary Kernel::arp_rx(NetDevice& in_dev, net::Packet&& pkt,
                         CycleTrace& trace) {
  ++counters_.arp_rx;
  trace.charge("arp", cost_.arp_process);
  if (pkt.size() < net::kEthHdrLen + net::kArpLen) return drop(Drop::kMalformed);
  net::ArpView arp(pkt.data() + net::kEthHdrLen);
  net::ArpFields f = arp.read();

  // Learn/refresh the sender in the neighbour table (dynamic entry).
  if (!f.sender_ip.is_zero()) {
    NeighEntry* existing = neigh_.lookup_mutable(f.sender_ip);
    bool had_pending = existing && !existing->pending.empty();
    NeighEntry& e = neigh_.update(f.sender_ip, f.sender_mac,
                                  in_dev.ifindex(), NeighState::kReachable,
                                  now_ns_);
    if (had_pending) {
      // Flush packets that were parked waiting for this resolution.
      std::vector<net::Packet> pending = std::move(e.pending);
      e.pending.clear();
      for (net::Packet& parked : pending) {
        net::EthernetView eth(parked.data());
        eth.set_src(in_dev.mac());
        eth.set_dst(f.sender_mac);
        dev_xmit(in_dev.ifindex(), std::move(parked), trace);
      }
    }
  }

  if (f.opcode == 1) {  // request: answer if the target IP is ours
    NetDevice* owner = local_addr_owner(f.target_ip);
    if (owner) {
      ++counters_.arp_tx;
      net::Packet reply = net::build_arp_reply(in_dev.mac(), f.target_ip,
                                               f.sender_mac, f.sender_ip);
      dev_xmit(in_dev.ifindex(), std::move(reply), trace);
    }
  }
  return RxSummary{false, Drop::kNone};
}

void Kernel::icmp_echo_reply(NetDevice& in_dev, const net::Packet& request,
                             const net::ParsedPacket& info,
                             CycleTrace& trace) {
  ++counters_.icmp_echo_replies;
  net::IcmpView req_icmp(
      const_cast<std::uint8_t*>(request.data() + info.l4_offset));
  net::Packet reply = net::build_icmp_echo(
      in_dev.mac(), info.eth_src, info.ip_dst, info.ip_src,
      /*is_reply=*/true, req_icmp.ident(), req_icmp.sequence());
  send_ip_packet(std::move(reply), trace);
}

void Kernel::send_ip_packet(net::Packet&& pkt, CycleTrace& trace) {
  auto parsed = net::parse_packet(pkt);
  if (!parsed || !parsed->has_ipv4) {
    count_drop(Drop::kMalformed);
    return;
  }
  // netfilter OUTPUT hook.
  if (netfilter_.has_any_rules_on(NfHook::kOutput)) {
    NfPacketInfo nfi;
    nfi.src = parsed->ip_src;
    nfi.dst = parsed->ip_dst;
    nfi.proto = parsed->ip_proto;
    nfi.sport = parsed->src_port;
    nfi.dport = parsed->dst_port;
    nfi.bytes = pkt.size();
    auto result = netfilter_.evaluate(NfHook::kOutput, nfi, ipsets_);
    trace.charge("nf_output",
                 nf_eval_cost(result, cost_.nf_hook_base, cost_.ipt_per_rule,
                              cost_.ipt_clf_probe, cost_.ipset_lookup));
    if (result.verdict == NfVerdict::kDrop) {
      count_drop(Drop::kPolicy);
      return;
    }
  }
  trace.charge("fib_lookup", cost_.fib_lookup);
  auto hit = fib_.lookup(parsed->ip_dst);
  note_fib_lookup(hit);
  if (!hit) {
    count_drop(Drop::kNoRoute);
    return;
  }
  NetDevice* out = dev(hit->route.oif);
  if (out) {
    net::EthernetView eth(pkt.data());
    eth.set_src(out->mac());
  }
  resolve_and_xmit(std::move(pkt), hit->next_hop, hit->route.oif, trace);
}

Drop Kernel::resolve_and_xmit(net::Packet&& pkt, net::Ipv4Addr next_hop,
                              int oif, CycleTrace& trace) {
  NetDevice* out = dev(oif);
  if (!out || !out->is_up()) {
    count_drop(Drop::kLinkDown);
    return Drop::kLinkDown;
  }
  trace.charge("neigh_lookup", cost_.neigh_lookup);
  const NeighEntry* entry = neigh_.lookup(next_hop);
  if (!entry || entry->state == NeighState::kIncomplete) {
    NeighEntry& pending = neigh_.create_incomplete(next_hop, oif, now_ns_);
    if (pending.pending.size() < NeighborTable::kMaxPending) {
      pending.pending.push_back(std::move(pkt));
    }
    count_drop(Drop::kNeighPending);
    emit_arp_request(next_hop, oif, trace);
    return Drop::kNeighPending;
  }
  net::EthernetView eth(pkt.data());
  eth.set_src(out->mac());
  eth.set_dst(entry->mac);
  dev_xmit(oif, std::move(pkt), trace);
  return Drop::kNone;
}

void Kernel::emit_arp_request(net::Ipv4Addr target, int oif,
                              CycleTrace& trace) {
  NetDevice* out = dev(oif);
  if (!out) return;
  // Source IP: the device's address on the subnet containing the target, or
  // its first address.
  net::Ipv4Addr src;
  for (const auto& a : out->addrs()) {
    if (a.subnet().contains(target)) {
      src = a.addr;
      break;
    }
  }
  if (src.is_zero() && !out->addrs().empty()) src = out->addrs()[0].addr;
  ++counters_.arp_tx;
  net::Packet req = net::build_arp_request(out->mac(), src, target);
  dev_xmit(oif, std::move(req), trace);
}

NetDevice* Kernel::local_addr_owner(net::Ipv4Addr addr) {
  for (auto& [ifi, d] : devs_) {
    if (d->has_addr(addr)) return d.get();
  }
  return nullptr;
}

// --- transmit ------------------------------------------------------------------

void Kernel::dev_xmit(int ifindex, net::Packet&& pkt, CycleTrace& trace) {
  // GSO: a GRO super-packet (engine/gro.h) splits back into its original
  // wire segments here, before shadow capture and the egress hooks, so every
  // downstream observer — the guard's emissions, TC egress, DevStats, the
  // wire — sees exactly the frames per-segment processing would have sent.
  if (pkt.gro_segs.size() > 1) {
    std::vector<net::Packet> segs = net::gso_segment(pkt);
    trace.charge("gso_segment",
                 cost_.gso_segment * static_cast<std::uint64_t>(segs.size()));
    if (auto* t = trace.packet_trace()) {
      t->add("gro", "gso_segment", 0,
             std::to_string(segs.size()) + " segments");
    }
    for (net::Packet& seg : segs) dev_xmit(ifindex, std::move(seg), trace);
    return;
  }
  // Shadow capture records every attempted transmit — before the link-state
  // check, so "slow path chose oif X with rewrite R" is observable even when
  // X is down (the fast path attempting the same dead oif must compare
  // equal, not diverge).
  if (active_shadow_cookie_ != 0) {
    shadow_emissions_.push_back(ShadowEmission{ifindex, net::Packet(pkt)});
  }
  NetDevice* d = dev(ifindex);
  if (!d) {
    // No device behind this ifindex at all (a redirect verdict naming a
    // never-created or deleted device): its own reason, never silent.
    count_drop(Drop::kNoDevice);
    return;
  }
  if (!d->is_up()) {
    count_drop(Drop::kLinkDown);
    return;
  }

  // TC egress hook.
  if (PacketProgram* prog = d->tc_egress_prog()) {
    auto result = prog->run(pkt, ifindex);
    trace.charge("tc_egress_prog", result.cycles + cost_.tc_hook_overhead);
    if (result.verdict == PacketProgram::Verdict::kDrop ||
        result.verdict == PacketProgram::Verdict::kUserspace) {
      count_drop(Drop::kTcDrop);
      return;
    }
    if (result.verdict == PacketProgram::Verdict::kRedirect) {
      dev_xmit(result.redirect_ifindex, std::move(pkt), trace);
      return;
    }
  }

  d->stats().tx_packets++;
  d->stats().tx_bytes += pkt.size();

  switch (d->kind()) {
    case DevKind::kPhysical: {
      // xmit_more path: with a batcher installed, the packet still reaches
      // the device right here (ordering and delivery are untouched) but only
      // the descriptor write is charged per packet — the batcher rings one
      // doorbell per burst. Without one, the legacy amortized constant.
      if (tx_batcher_ != nullptr) {
        tx_batcher_->post_descriptor(*d, pkt.size(), trace);
      } else {
        trace.charge("driver_tx", cost_.driver_tx);
      }
      if (d->phys_tx()) {
        d->phys_tx()(std::move(pkt));
      }
      return;
    }
    case DevKind::kVeth: {
      trace.charge("veth_xmit", cost_.veth_xmit);
      VethPeer& peer = d->veth();
      if (peer.kernel) {
        peer.kernel->rx(peer.ifindex, std::move(pkt), trace);
      }
      return;
    }
    case DevKind::kBridge: {
      Bridge* br = bridge(ifindex);
      if (br) bridge_dev_xmit(*br, *d, std::move(pkt), trace);
      return;
    }
    case DevKind::kVxlan: {
      vxlan_xmit(*d, std::move(pkt), trace);
      return;
    }
    case DevKind::kLoopback: {
      rx(ifindex, std::move(pkt), trace);
      return;
    }
  }
}

void Kernel::bridge_dev_xmit(Bridge& br, NetDevice& br_dev, net::Packet&& pkt,
                             CycleTrace& trace) {
  // Host-originated frame onto the bridge: FDB lookup, else flood.
  (void)br_dev;
  if (pkt.size() < net::kEthHdrLen) {
    count_drop(Drop::kMalformed);
    return;
  }
  net::EthernetView eth(pkt.data());
  net::MacAddr dst = eth.dst();
  trace.charge("br_fdb_lookup", cost_.br_fdb_lookup);
  if (!dst.is_broadcast() && !dst.is_multicast()) {
    const FdbEntry* entry = br.fdb_lookup(dst, 0);
    if (entry) {
      const BridgePort* out = br.port(entry->port_ifindex);
      if (out && out->can_forward()) {
        trace.charge("br_forward", cost_.br_forward);
        dev_xmit(entry->port_ifindex, std::move(pkt), trace);
      }
      return;
    }
  }
  for (const auto& [ifi, p] : br.ports()) {
    if (!p.can_forward()) continue;
    trace.charge("br_flood", cost_.br_flood_per_port);
    net::Packet clone = pkt;
    dev_xmit(ifi, std::move(clone), trace);
  }
}

void Kernel::vxlan_xmit(NetDevice& vxlan_dev, net::Packet&& pkt,
                        CycleTrace& trace) {
  if (pkt.size() < net::kEthHdrLen) {
    count_drop(Drop::kMalformed);
    return;
  }
  VxlanConfig& cfg = vxlan_dev.vxlan();
  net::EthernetView eth(pkt.data());
  eth.set_src(vxlan_dev.mac());

  auto it = cfg.vtep_fdb.find(eth.dst());
  if (it == cfg.vtep_fdb.end()) {
    count_drop(Drop::kNoRoute);
    return;
  }
  net::Ipv4Addr remote = it->second;

  trace.charge("vxlan_encap", cost_.vxlan_encap);
  NetDevice* underlay = dev(cfg.underlay_ifindex);
  if (!underlay || !underlay->is_up()) {
    count_drop(Drop::kLinkDown);
    return;
  }
  net::vxlan_encap(pkt, cfg.vni, underlay->mac(), net::MacAddr::zero(),
                   cfg.local, remote,
                   static_cast<std::uint16_t>(++last_vxlan_entropy_));

  // Route the outer packet toward the remote VTEP.
  trace.charge("fib_lookup", cost_.fib_lookup);
  auto hit = fib_.lookup(remote);
  note_fib_lookup(hit);
  if (!hit) {
    count_drop(Drop::kNoRoute);
    return;
  }
  resolve_and_xmit(std::move(pkt), hit->next_hop, hit->route.oif, trace);
}

RxSummary Kernel::vxlan_rx(NetDevice& in_dev, net::Packet&& pkt,
                           const net::ParsedPacket& outer, CycleTrace& trace) {
  (void)in_dev;
  if (pkt.size() <
      outer.l4_offset + net::kUdpHdrLen + net::kVxlanHdrLen + net::kEthHdrLen) {
    return drop(Drop::kMalformed);
  }
  net::VxlanView vx(pkt.data() + outer.l4_offset + net::kUdpHdrLen);
  std::uint32_t vni = vx.vni();

  // Find the local VTEP device for this VNI.
  NetDevice* vtep = nullptr;
  for (auto& [ifi, d] : devs_) {
    if (d->kind() == DevKind::kVxlan && d->vxlan().vni == vni) {
      vtep = d.get();
      break;
    }
  }
  if (!vtep || !vtep->is_up()) return drop(Drop::kNoHandler);

  trace.charge("vxlan_decap", cost_.vxlan_decap);
  net::vxlan_decap(pkt);
  // The inner frame is received on the VTEP device.
  return stack_rx(*vtep, std::move(pkt), trace);
}

}  // namespace linuxfp::kern
