#include "kernel/fib.h"

#include <algorithm>
#include <functional>

namespace linuxfp::kern {

struct Fib::Node {
  std::unique_ptr<Node> child[2];
  // Routes terminating at this prefix, ascending by metric: front() is the
  // active route, the rest are backups (kernel fib_alias list semantics).
  std::vector<Route> routes;
};

Fib::Fib() : root_(std::make_unique<Node>()) {}
Fib::~Fib() = default;

namespace {
// Bit i (0 = MSB) of an IPv4 address.
inline int addr_bit(std::uint32_t addr, std::uint8_t i) {
  return (addr >> (31 - i)) & 1u;
}
}  // namespace

Fib::Node* Fib::walk_to(const net::Ipv4Prefix& prefix) const {
  Node* node = root_.get();
  std::uint32_t addr = prefix.network().value();
  for (std::uint8_t i = 0; i < prefix.prefix_len(); ++i) {
    int b = addr_bit(addr, i);
    if (!node->child[b]) return nullptr;
    node = node->child[b].get();
  }
  return node;
}

void Fib::add_route(const Route& route) {
  Node* node = root_.get();
  std::uint32_t addr = route.dst.network().value();
  for (std::uint8_t i = 0; i < route.dst.prefix_len(); ++i) {
    int b = addr_bit(addr, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  // Replace an existing (prefix, metric) entry; otherwise insert keeping the
  // list sorted so a same-prefix backup route with a higher metric coexists
  // instead of being dropped.
  auto it = std::find_if(
      node->routes.begin(), node->routes.end(),
      [&](const Route& r) { return r.metric == route.metric; });
  if (it != node->routes.end()) {
    *it = route;
    generation_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  it = std::upper_bound(
      node->routes.begin(), node->routes.end(), route,
      [](const Route& a, const Route& b) { return a.metric < b.metric; });
  node->routes.insert(it, route);
  ++size_;
  generation_.fetch_add(1, std::memory_order_relaxed);
}

bool Fib::del_route(const net::Ipv4Prefix& prefix,
                    std::optional<std::uint32_t> metric) {
  Node* node = walk_to(prefix);
  if (!node || node->routes.empty()) return false;
  if (metric) {
    auto it = std::find_if(
        node->routes.begin(), node->routes.end(),
        [&](const Route& r) { return r.metric == *metric; });
    if (it == node->routes.end()) return false;
    node->routes.erase(it);
  } else {
    node->routes.erase(node->routes.begin());
  }
  --size_;
  generation_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::optional<Route> Fib::get_route(const net::Ipv4Prefix& prefix,
                                    std::optional<std::uint32_t> metric) const {
  const Node* node = walk_to(prefix);
  if (!node || node->routes.empty()) return std::nullopt;
  if (!metric) return node->routes.front();
  for (const Route& r : node->routes) {
    if (r.metric == *metric) return r;
  }
  return std::nullopt;
}

std::vector<Route> Fib::purge_interface(int ifindex) {
  std::vector<Route> removed;
  std::function<void(Node*)> walk = [&](Node* node) {
    if (!node) return;
    auto it = node->routes.begin();
    while (it != node->routes.end()) {
      if (it->oif == ifindex) {
        removed.push_back(*it);
        it = node->routes.erase(it);
        --size_;
      } else {
        ++it;
      }
    }
    walk(node->child[0].get());
    walk(node->child[1].get());
  };
  walk(root_.get());
  if (!removed.empty()) generation_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

std::optional<FibResult> Fib::lookup(net::Ipv4Addr dst) const {
  const Node* node = root_.get();
  const Route* best = node->routes.empty() ? nullptr : &node->routes.front();
  std::size_t depth = 0;
  std::uint32_t addr = dst.value();
  for (std::uint8_t i = 0; i < 32 && node; ++i) {
    node = node->child[addr_bit(addr, i)].get();
    if (!node) break;
    ++depth;
    if (!node->routes.empty()) best = &node->routes.front();
  }
  if (!best) return std::nullopt;
  FibResult res;
  res.route = *best;
  res.next_hop = best->gateway.is_zero() ? dst : best->gateway;
  res.depth = depth;
  return res;
}

std::vector<Route> Fib::dump() const {
  std::vector<Route> out;
  std::function<void(const Node*)> walk = [&](const Node* node) {
    if (!node) return;
    for (const Route& r : node->routes) out.push_back(r);
    walk(node->child[0].get());
    walk(node->child[1].get());
  };
  walk(root_.get());
  return out;
}

}  // namespace linuxfp::kern
