#include "kernel/fib.h"

#include <functional>

namespace linuxfp::kern {

struct Fib::Node {
  std::unique_ptr<Node> child[2];
  std::optional<Route> route;  // set when a prefix terminates here
};

Fib::Fib() : root_(std::make_unique<Node>()) {}
Fib::~Fib() = default;

namespace {
// Bit i (0 = MSB) of an IPv4 address.
inline int addr_bit(std::uint32_t addr, std::uint8_t i) {
  return (addr >> (31 - i)) & 1u;
}
}  // namespace

void Fib::add_route(const Route& route) {
  Node* node = root_.get();
  std::uint32_t addr = route.dst.network().value();
  for (std::uint8_t i = 0; i < route.dst.prefix_len(); ++i) {
    int b = addr_bit(addr, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->route) ++size_;
  // Replace semantics: a new route for the same prefix wins if its metric is
  // lower or equal (mirrors `ip route replace`; our tools use replace).
  if (!node->route || route.metric <= node->route->metric) {
    node->route = route;
  }
}

bool Fib::del_route(const net::Ipv4Prefix& prefix) {
  Node* node = root_.get();
  std::uint32_t addr = prefix.network().value();
  for (std::uint8_t i = 0; i < prefix.prefix_len(); ++i) {
    int b = addr_bit(addr, i);
    if (!node->child[b]) return false;
    node = node->child[b].get();
  }
  if (!node->route) return false;
  node->route.reset();
  --size_;
  return true;
}

std::vector<Route> Fib::purge_interface(int ifindex) {
  std::vector<Route> removed;
  std::function<void(Node*)> walk = [&](Node* node) {
    if (!node) return;
    if (node->route && node->route->oif == ifindex) {
      removed.push_back(*node->route);
      node->route.reset();
      --size_;
    }
    walk(node->child[0].get());
    walk(node->child[1].get());
  };
  walk(root_.get());
  return removed;
}

std::optional<FibResult> Fib::lookup(net::Ipv4Addr dst) const {
  const Node* node = root_.get();
  const Route* best = node->route ? &*node->route : nullptr;
  std::size_t depth = 0;
  std::uint32_t addr = dst.value();
  for (std::uint8_t i = 0; i < 32 && node; ++i) {
    node = node->child[addr_bit(addr, i)].get();
    if (!node) break;
    ++depth;
    if (node->route) best = &*node->route;
  }
  last_depth_ = depth;
  if (!best) return std::nullopt;
  FibResult res;
  res.route = *best;
  res.next_hop = best->gateway.is_zero() ? dst : best->gateway;
  return res;
}

std::vector<Route> Fib::dump() const {
  std::vector<Route> out;
  std::function<void(const Node*)> walk = [&](const Node* node) {
    if (!node) return;
    if (node->route) out.push_back(*node->route);
    walk(node->child[0].get());
    walk(node->child[1].get());
  };
  walk(root_.get());
  return out;
}

}  // namespace linuxfp::kern
