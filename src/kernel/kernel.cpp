#include "kernel/kernel.h"

#include <algorithm>

#include "util/logging.h"

namespace linuxfp::kern {

namespace {
util::Json route_attrs(const Route& r, const std::string& dev_name) {
  util::Json j = util::Json::object();
  j["dst"] = r.dst.to_string();
  j["gateway"] = r.gateway.is_zero() ? "" : r.gateway.to_string();
  j["oif"] = r.oif;
  j["dev"] = dev_name;
  j["scope"] = r.scope == RouteScope::kLink ? "link" : "global";
  j["metric"] = static_cast<std::int64_t>(r.metric);
  return j;
}
}  // namespace

const char* drop_name(Drop reason) {
  switch (reason) {
    case Drop::kNone: return "none";
    case Drop::kLinkDown: return "link_down";
    case Drop::kStpBlocked: return "stp_blocked";
    case Drop::kVlanFiltered: return "vlan_filtered";
    case Drop::kPolicy: return "policy";
    case Drop::kNoRoute: return "no_route";
    case Drop::kTtlExceeded: return "ttl_exceeded";
    case Drop::kNeighPending: return "neigh_pending";
    case Drop::kMalformed: return "malformed";
    case Drop::kNotForUs: return "not_for_us";
    case Drop::kXdpDrop: return "xdp_drop";
    case Drop::kTcDrop: return "tc_drop";
    case Drop::kNoHandler: return "no_handler";
    case Drop::kNoDevice: return "no_device";
  }
  return "unknown";
}

Kernel::Kernel(std::string hostname, CostModel cost)
    : hostname_(std::move(hostname)), cost_(cost) {
  netlink_.set_dump_provider(this);
  stage_sink_.bind(&metrics_, "slowpath.");
  for (int i = 0; i <= static_cast<int>(Drop::kNoDevice); ++i) {
    drop_counters_[i] = metrics_.counter(
        std::string("drop.") + drop_name(static_cast<Drop>(i)));
  }
  fib_lookups_ = metrics_.counter("fib.lookups");
  fib_depth_total_ = metrics_.counter("fib.depth_total");
}

Kernel::~Kernel() = default;

void Kernel::tick() {
  for (auto& [ifi, br] : bridges_) {
    br->fdb_age(now_ns_);
    br->stp_tick(now_ns_);
    // Emit BPDUs on designated ports (slow-path control traffic).
    for (auto& [port_ifi, bpdu] : br->generate_bpdus()) {
      // BPDUs are modeled as control messages delivered directly to the
      // peer's bridge (we do not serialize LLC frames); what matters for
      // LinuxFP is that they traverse the slow path and can change state.
      NetDevice* port = dev(port_ifi);
      if (!port || !port->is_up()) continue;
      if (port->kind() == DevKind::kVeth && port->veth().kernel) {
        Kernel& peer = *port->veth().kernel;
        NetDevice* peer_dev = peer.dev(port->veth().ifindex);
        if (peer_dev && peer_dev->master() != 0) {
          Bridge* peer_br = peer.bridge(peer_dev->master());
          if (peer_br && peer_br->process_bpdu(peer_dev->ifindex(), bpdu)) {
            peer.publish_link(*peer_dev);
          }
          ++peer.counters_.bpdus_processed;
        }
      }
    }
  }
  neigh_.age(now_ns_, 60ull * 1000 * 1000 * 1000);
  conntrack_.expire_idle(now_ns_, 120ull * 1000 * 1000 * 1000);
}

// --- device management -------------------------------------------------------

NetDevice& Kernel::add_phys_dev(const std::string& name) {
  int ifi = next_ifindex_++;
  auto dev = std::make_unique<NetDevice>(
      ifi, name, DevKind::kPhysical,
      net::MacAddr::from_id(static_cast<std::uint32_t>(
          std::hash<std::string>{}(hostname_ + name) & 0xffffff)));
  NetDevice& ref = *dev;
  devs_[ifi] = std::move(dev);
  dev_names_[name] = ifi;
  bump_dev_generation();
  publish_link(ref);
  return ref;
}

NetDevice& Kernel::add_loopback() {
  int ifi = next_ifindex_++;
  auto dev = std::make_unique<NetDevice>(ifi, "lo", DevKind::kLoopback,
                                         net::MacAddr::zero());
  dev->set_up(true);
  NetDevice& ref = *dev;
  devs_[ifi] = std::move(dev);
  dev_names_["lo"] = ifi;
  bump_dev_generation();
  return ref;
}

NetDevice& Kernel::add_bridge_dev(const std::string& name) {
  int ifi = next_ifindex_++;
  auto dev = std::make_unique<NetDevice>(
      ifi, name, DevKind::kBridge,
      net::MacAddr::from_id(static_cast<std::uint32_t>(
          std::hash<std::string>{}(hostname_ + name + "br") & 0xffffff)));
  NetDevice& ref = *dev;
  devs_[ifi] = std::move(dev);
  dev_names_[name] = ifi;
  bridges_[ifi] = std::make_unique<Bridge>(ifi, ref.mac(), &bridge_gen_);
  bump_dev_generation();
  publish_link(ref);
  return ref;
}

std::pair<NetDevice*, NetDevice*> Kernel::add_veth_pair(const std::string& a,
                                                        const std::string& b) {
  NetDevice& da = add_veth_to(a, *this, b);
  NetDevice* db = dev_by_name(b);
  return {&da, db};
}

NetDevice& Kernel::add_veth_to(const std::string& name, Kernel& peer_kernel,
                               const std::string& peer_name) {
  int ifi = next_ifindex_++;
  auto dev = std::make_unique<NetDevice>(
      ifi, name, DevKind::kVeth,
      net::MacAddr::from_id(static_cast<std::uint32_t>(
          std::hash<std::string>{}(hostname_ + name) & 0xffffff)));
  NetDevice& ref = *dev;
  devs_[ifi] = std::move(dev);
  dev_names_[name] = ifi;

  int peer_ifi = peer_kernel.next_ifindex_++;
  auto peer = std::make_unique<NetDevice>(
      peer_ifi, peer_name, DevKind::kVeth,
      net::MacAddr::from_id(static_cast<std::uint32_t>(
          std::hash<std::string>{}(peer_kernel.hostname_ + peer_name) &
          0xffffff)));
  NetDevice& peer_ref = *peer;
  peer_kernel.devs_[peer_ifi] = std::move(peer);
  peer_kernel.dev_names_[peer_name] = peer_ifi;

  ref.veth() = VethPeer{&peer_kernel, peer_ifi};
  peer_ref.veth() = VethPeer{this, ifi};

  bump_dev_generation();
  peer_kernel.bump_dev_generation();
  publish_link(ref);
  peer_kernel.publish_link(peer_ref);
  return ref;
}

NetDevice& Kernel::add_vxlan_dev(const std::string& name, std::uint32_t vni,
                                 net::Ipv4Addr local, int underlay_ifindex) {
  int ifi = next_ifindex_++;
  auto dev = std::make_unique<NetDevice>(
      ifi, name, DevKind::kVxlan,
      net::MacAddr::from_id(static_cast<std::uint32_t>(
          std::hash<std::string>{}(hostname_ + name + "vx") & 0xffffff)));
  dev->vxlan().vni = vni;
  dev->vxlan().local = local;
  dev->vxlan().underlay_ifindex = underlay_ifindex;
  NetDevice& ref = *dev;
  devs_[ifi] = std::move(dev);
  dev_names_[name] = ifi;
  bump_dev_generation();
  publish_link(ref);
  return ref;
}

util::Status Kernel::del_dev(const std::string& name) {
  auto it = dev_names_.find(name);
  if (it == dev_names_.end()) {
    return util::Error::make("dev.missing", "no such device: " + name);
  }
  int ifi = it->second;
  NetDevice* d = dev(ifi);
  // Remove from any bridge it is enslaved to.
  if (d->master() != 0) {
    Bridge* br = bridge(d->master());
    if (br) br->del_port(ifi);
  }
  // Deleting a bridge device deletes the bridge object.
  bridges_.erase(ifi);
  for (Route& r : fib_.purge_interface(ifi)) {
    netlink_.publish(nl::MsgType::kDelRoute, route_attrs(r, name));
  }
  publish_link(*d, /*deleted=*/true);
  dev_names_.erase(it);
  devs_.erase(ifi);
  bump_dev_generation();
  return {};
}

NetDevice* Kernel::dev(int ifindex) {
  auto it = devs_.find(ifindex);
  return it == devs_.end() ? nullptr : it->second.get();
}

const NetDevice* Kernel::dev(int ifindex) const {
  auto it = devs_.find(ifindex);
  return it == devs_.end() ? nullptr : it->second.get();
}

NetDevice* Kernel::dev_by_name(const std::string& name) {
  auto it = dev_names_.find(name);
  return it == dev_names_.end() ? nullptr : dev(it->second);
}

const NetDevice* Kernel::dev_by_name(const std::string& name) const {
  auto it = dev_names_.find(name);
  return it == dev_names_.end() ? nullptr : dev(it->second);
}

std::vector<NetDevice*> Kernel::devices() {
  std::vector<NetDevice*> out;
  for (auto& [ifi, d] : devs_) out.push_back(d.get());
  return out;
}

util::Status Kernel::set_link_up(const std::string& name, bool up) {
  NetDevice* d = dev_by_name(name);
  if (!d) return util::Error::make("dev.missing", "no such device: " + name);
  if (d->is_up() == up) return {};
  d->set_up(up);
  bump_dev_generation();
  if (!up) {
    for (Route& r : fib_.purge_interface(d->ifindex())) {
      netlink_.publish(nl::MsgType::kDelRoute, route_attrs(r, name));
    }
  }
  publish_link(*d);
  return {};
}

util::Status Kernel::enslave(const std::string& port,
                             const std::string& bridge_name) {
  NetDevice* p = dev_by_name(port);
  NetDevice* b = dev_by_name(bridge_name);
  if (!p || !b) return util::Error::make("dev.missing", "no such device");
  Bridge* br = bridge(b->ifindex());
  if (!br) {
    return util::Error::make("bridge.missing",
                             bridge_name + " is not a bridge");
  }
  if (p->master() != 0) {
    return util::Error::make("bridge.enslaved", port + " already has master");
  }
  p->set_master(b->ifindex());
  br->add_port(p->ifindex());
  bump_dev_generation();
  publish_link(*p);
  return {};
}

util::Status Kernel::release(const std::string& port) {
  NetDevice* p = dev_by_name(port);
  if (!p) return util::Error::make("dev.missing", "no such device: " + port);
  if (p->master() == 0) {
    return util::Error::make("bridge.notport", port + " has no master");
  }
  Bridge* br = bridge(p->master());
  if (br) br->del_port(p->ifindex());
  p->set_master(0);
  bump_dev_generation();
  publish_link(*p);
  return {};
}

// --- addresses and routes -----------------------------------------------------

util::Status Kernel::add_addr(const std::string& dev_name,
                              const net::IfAddr& addr) {
  NetDevice* d = dev_by_name(dev_name);
  if (!d) {
    return util::Error::make("dev.missing", "no such device: " + dev_name);
  }
  if (!d->add_addr(addr)) {
    return util::Error::make("addr.exists", "address exists");
  }
  bump_dev_generation();
  util::Json attrs = util::Json::object();
  attrs["dev"] = dev_name;
  attrs["ifindex"] = d->ifindex();
  attrs["addr"] = addr.to_string();
  netlink_.publish(nl::MsgType::kNewAddr, attrs);

  // Kernel behaviour: adding an address installs the connected route.
  if (addr.prefix_len < 32) {
    Route r;
    r.dst = addr.subnet();
    r.oif = d->ifindex();
    r.scope = RouteScope::kLink;
    fib_.add_route(r);
    netlink_.publish(nl::MsgType::kNewRoute, route_attrs(r, dev_name));
  }
  return {};
}

util::Status Kernel::del_addr(const std::string& dev_name,
                              const net::IfAddr& addr) {
  NetDevice* d = dev_by_name(dev_name);
  if (!d) {
    return util::Error::make("dev.missing", "no such device: " + dev_name);
  }
  if (!d->del_addr(addr)) {
    return util::Error::make("addr.missing", "no such address");
  }
  bump_dev_generation();
  util::Json attrs = util::Json::object();
  attrs["dev"] = dev_name;
  attrs["ifindex"] = d->ifindex();
  attrs["addr"] = addr.to_string();
  netlink_.publish(nl::MsgType::kDelAddr, attrs);
  if (addr.prefix_len < 32) {
    Route r;
    r.dst = addr.subnet();
    if (fib_.del_route(r.dst)) {
      r.oif = d->ifindex();
      r.scope = RouteScope::kLink;
      netlink_.publish(nl::MsgType::kDelRoute, route_attrs(r, dev_name));
    }
  }
  return {};
}

util::Status Kernel::add_route(const net::Ipv4Prefix& dst, net::Ipv4Addr via,
                               const std::string& dev_name,
                               std::uint32_t metric) {
  NetDevice* d = dev_by_name(dev_name);
  if (!d) {
    return util::Error::make("dev.missing", "no such device: " + dev_name);
  }
  Route r;
  r.dst = dst;
  r.gateway = via;
  r.oif = d->ifindex();
  r.scope = via.is_zero() ? RouteScope::kLink : RouteScope::kGlobal;
  r.metric = metric;
  fib_.add_route(r);
  netlink_.publish(nl::MsgType::kNewRoute, route_attrs(r, dev_name));
  return {};
}

util::Status Kernel::del_route(const net::Ipv4Prefix& dst,
                               std::optional<std::uint32_t> metric) {
  auto found = fib_.get_route(dst, metric);
  if (!fib_.del_route(dst, metric)) {
    return util::Error::make("route.missing", "no such route");
  }
  Route r;
  r.dst = dst;
  std::string dev_name;
  if (found) {
    r = *found;
    const NetDevice* d = dev(r.oif);
    if (d) dev_name = d->name();
  }
  netlink_.publish(nl::MsgType::kDelRoute, route_attrs(r, dev_name));
  return {};
}

util::Status Kernel::add_neigh(net::Ipv4Addr ip, const net::MacAddr& mac,
                               const std::string& dev_name, bool permanent) {
  NetDevice* d = dev_by_name(dev_name);
  if (!d) {
    return util::Error::make("dev.missing", "no such device: " + dev_name);
  }
  neigh_.update(ip, mac, d->ifindex(),
                permanent ? NeighState::kPermanent : NeighState::kReachable,
                now_ns_);
  util::Json attrs = util::Json::object();
  attrs["ip"] = ip.to_string();
  attrs["mac"] = mac.to_string();
  attrs["dev"] = dev_name;
  attrs["state"] = permanent ? "PERMANENT" : "REACHABLE";
  attrs["dynamic"] = false;
  netlink_.publish(nl::MsgType::kNewNeigh, attrs);
  return {};
}

util::Status Kernel::del_neigh(net::Ipv4Addr ip) {
  if (!neigh_.erase(ip)) {
    return util::Error::make("neigh.missing", "no such neighbour");
  }
  util::Json attrs = util::Json::object();
  attrs["ip"] = ip.to_string();
  netlink_.publish(nl::MsgType::kDelNeigh, attrs);
  return {};
}

util::Status Kernel::set_sysctl(const std::string& key, int value) {
  sysctls_[key] = value;
  bump_dev_generation();
  util::Json attrs = util::Json::object();
  attrs["key"] = key;
  attrs["value"] = value;
  netlink_.publish(nl::MsgType::kSysctl, attrs);
  return {};
}

int Kernel::sysctl(const std::string& key, int fallback) const {
  auto it = sysctls_.find(key);
  return it == sysctls_.end() ? fallback : it->second;
}

Bridge* Kernel::bridge(int ifindex) {
  auto it = bridges_.find(ifindex);
  return it == bridges_.end() ? nullptr : it->second.get();
}

const Bridge* Kernel::bridge(int ifindex) const {
  auto it = bridges_.find(ifindex);
  return it == bridges_.end() ? nullptr : it->second.get();
}

Bridge* Kernel::bridge_by_name(const std::string& name) {
  NetDevice* d = dev_by_name(name);
  return d ? bridge(d->ifindex()) : nullptr;
}

std::vector<Bridge*> Kernel::bridges() {
  std::vector<Bridge*> out;
  for (auto& [ifi, br] : bridges_) out.push_back(br.get());
  return out;
}

// --- netfilter mutations -------------------------------------------------------

namespace {
util::Json rule_event(const std::string& chain) {
  util::Json j = util::Json::object();
  j["chain"] = chain;
  return j;
}
}  // namespace

util::Status Kernel::ipt_append(const std::string& chain, Rule rule) {
  auto st = netfilter_.append_rule(chain, std::move(rule));
  if (st.ok()) netlink_.publish(nl::MsgType::kNewRule, rule_event(chain));
  return st;
}

util::Status Kernel::ipt_insert(const std::string& chain, std::size_t index,
                                Rule rule) {
  auto st = netfilter_.insert_rule(chain, index, std::move(rule));
  if (st.ok()) netlink_.publish(nl::MsgType::kNewRule, rule_event(chain));
  return st;
}

util::Status Kernel::ipt_delete(const std::string& chain, std::size_t index) {
  auto st = netfilter_.delete_rule(chain, index);
  if (st.ok()) netlink_.publish(nl::MsgType::kDelRule, rule_event(chain));
  return st;
}

util::Status Kernel::ipt_flush(const std::string& chain) {
  auto st = netfilter_.flush(chain);
  if (st.ok()) netlink_.publish(nl::MsgType::kDelRule, rule_event(chain));
  return st;
}

util::Status Kernel::ipt_new_chain(const std::string& name) {
  auto st = netfilter_.new_chain(name);
  if (st.ok()) netlink_.publish(nl::MsgType::kNewRule, rule_event(name));
  return st;
}

util::Status Kernel::ipt_set_policy(const std::string& chain,
                                    NfVerdict policy) {
  auto st = netfilter_.set_policy(chain, policy);
  if (st.ok()) netlink_.publish(nl::MsgType::kNewRule, rule_event(chain));
  return st;
}

util::Status Kernel::ipset_create(const std::string& name, IpSetType type,
                                  std::size_t maxelem) {
  auto st = ipsets_.create(name, type, maxelem);
  if (st.ok()) {
    util::Json j = util::Json::object();
    j["set"] = name;
    netlink_.publish(nl::MsgType::kNewSet, j);
  }
  return st;
}

util::Status Kernel::ipset_add(const std::string& name,
                               const net::Ipv4Prefix& member) {
  IpSet* set = ipsets_.find(name);
  if (!set) return util::Error::make("ipset.missing", "no such set: " + name);
  auto st = set->add(member);
  if (st.ok()) {
    util::Json j = util::Json::object();
    j["set"] = name;
    netlink_.publish(nl::MsgType::kNewSet, j);
  }
  return st;
}

util::Status Kernel::ipset_del(const std::string& name,
                               const net::Ipv4Prefix& member) {
  IpSet* set = ipsets_.find(name);
  if (!set) return util::Error::make("ipset.missing", "no such set: " + name);
  if (!set->del(member)) {
    return util::Error::make("ipset.member", "no such member");
  }
  util::Json j = util::Json::object();
  j["set"] = name;
  netlink_.publish(nl::MsgType::kNewSet, j);
  return {};
}

util::Status Kernel::ipset_destroy(const std::string& name) {
  auto st = ipsets_.destroy(name);
  if (st.ok()) {
    util::Json j = util::Json::object();
    j["set"] = name;
    netlink_.publish(nl::MsgType::kDelSet, j);
  }
  return st;
}

namespace {
util::Json svc_event(net::Ipv4Addr vip, std::uint16_t port,
                     std::uint8_t proto) {
  util::Json j = util::Json::object();
  j["vip"] = vip.to_string();
  j["port"] = static_cast<int>(port);
  j["proto"] = static_cast<int>(proto);
  return j;
}
}  // namespace

util::Status Kernel::ipvs_add_service(net::Ipv4Addr vip, std::uint16_t port,
                                      std::uint8_t proto,
                                      IpvsScheduler scheduler) {
  auto st = ipvs_.add_service(vip, port, proto, scheduler);
  if (st.ok()) {
    netlink_.publish(nl::MsgType::kNewService, svc_event(vip, port, proto));
  }
  return st;
}

util::Status Kernel::ipvs_del_service(net::Ipv4Addr vip, std::uint16_t port,
                                      std::uint8_t proto) {
  auto st = ipvs_.del_service(vip, port, proto);
  if (st.ok()) {
    netlink_.publish(nl::MsgType::kDelService, svc_event(vip, port, proto));
  }
  return st;
}

util::Status Kernel::ipvs_add_backend(net::Ipv4Addr vip, std::uint16_t port,
                                      std::uint8_t proto,
                                      net::Ipv4Addr backend,
                                      std::uint16_t backend_port,
                                      std::uint32_t weight) {
  auto st =
      ipvs_.add_backend(vip, port, proto, backend, backend_port, weight);
  if (st.ok()) {
    netlink_.publish(nl::MsgType::kNewService, svc_event(vip, port, proto));
  }
  return st;
}

// --- netlink dump provider -----------------------------------------------------

util::Json Kernel::link_attrs(const NetDevice& d) const {
  util::Json attrs = util::Json::object();
  attrs["ifindex"] = d.ifindex();
  attrs["ifname"] = d.name();
  attrs["kind"] = dev_kind_name(d.kind());
  attrs["mac"] = d.mac().to_string();
  attrs["up"] = d.is_up();
  attrs["mtu"] = static_cast<std::int64_t>(d.mtu());
  attrs["master"] = d.master();
  if (d.kind() == DevKind::kBridge) {
    const Bridge* br = bridge(d.ifindex());
    if (br) {
      attrs["stp"] = br->stp_enabled();
      attrs["vlan_filtering"] = br->vlan_filtering();
      util::Json ports = util::Json::array();
      for (const auto& [ifi, p] : br->ports()) {
        util::Json pj = util::Json::object();
        pj["ifindex"] = ifi;
        const NetDevice* pd = dev(ifi);
        pj["ifname"] = pd ? pd->name() : "";
        pj["state"] = stp_state_name(p.state);
        pj["pvid"] = p.pvid;
        ports.push_back(pj);
      }
      attrs["ports"] = ports;
    }
  }
  if (d.kind() == DevKind::kVxlan) {
    attrs["vni"] = static_cast<std::int64_t>(d.vxlan().vni);
    attrs["local"] = d.vxlan().local.to_string();
  }
  util::Json addrs = util::Json::array();
  for (const auto& a : d.addrs()) addrs.push_back(a.to_string());
  attrs["addrs"] = addrs;
  return attrs;
}

void Kernel::publish_link(const NetDevice& d, bool deleted) {
  netlink_.publish(deleted ? nl::MsgType::kDelLink : nl::MsgType::kNewLink,
                   link_attrs(d));
}

std::vector<nl::Message> Kernel::dump(nl::DumpKind kind) const {
  std::vector<nl::Message> out;
  switch (kind) {
    case nl::DumpKind::kLinks: {
      for (const auto& [ifi, d] : devs_) {
        out.push_back({nl::MsgType::kNewLink, link_attrs(*d)});
      }
      break;
    }
    case nl::DumpKind::kAddrs: {
      for (const auto& [ifi, d] : devs_) {
        for (const auto& a : d->addrs()) {
          util::Json attrs = util::Json::object();
          attrs["dev"] = d->name();
          attrs["ifindex"] = d->ifindex();
          attrs["addr"] = a.to_string();
          out.push_back({nl::MsgType::kNewAddr, attrs});
        }
      }
      break;
    }
    case nl::DumpKind::kRoutes: {
      for (const Route& r : fib_.dump()) {
        const NetDevice* d = dev(r.oif);
        out.push_back(
            {nl::MsgType::kNewRoute, route_attrs(r, d ? d->name() : "")});
      }
      break;
    }
    case nl::DumpKind::kNeighbors: {
      for (const NeighEntry* e : neigh_.dump()) {
        util::Json attrs = util::Json::object();
        attrs["ip"] = e->ip.to_string();
        attrs["mac"] = e->mac.to_string();
        const NetDevice* d = dev(e->ifindex);
        attrs["dev"] = d ? d->name() : "";
        attrs["state"] = neigh_state_name(e->state);
        attrs["dynamic"] = e->state != NeighState::kPermanent;
        out.push_back({nl::MsgType::kNewNeigh, attrs});
      }
      break;
    }
    case nl::DumpKind::kRules: {
      for (const Chain* c : netfilter_.dump()) {
        util::Json attrs = util::Json::object();
        attrs["chain"] = c->name;
        attrs["builtin"] = c->builtin;
        attrs["policy"] = c->policy == NfVerdict::kDrop ? "DROP" : "ACCEPT";
        util::Json rules = util::Json::array();
        for (const Rule& r : c->rules) {
          util::Json rj = util::Json::object();
          if (r.match.src) rj["src"] = r.match.src->to_string();
          if (r.match.dst) rj["dst"] = r.match.dst->to_string();
          if (r.match.src_negated) rj["src_neg"] = true;
          if (r.match.dst_negated) rj["dst_neg"] = true;
          if (r.match.proto) rj["proto"] = static_cast<int>(*r.match.proto);
          if (r.match.dport) rj["dport"] = static_cast<int>(*r.match.dport);
          if (r.match.sport) rj["sport"] = static_cast<int>(*r.match.sport);
          if (!r.match.in_if.empty()) rj["in_if"] = r.match.in_if;
          if (!r.match.out_if.empty()) rj["out_if"] = r.match.out_if;
          if (!r.match.match_set.empty()) {
            rj["match_set"] = r.match.match_set;
            rj["set_dir"] = r.match.set_match_src ? "src" : "dst";
          }
          if (!r.match.ct_state.empty()) rj["ct_state"] = r.match.ct_state;
          switch (r.target) {
            case RuleTarget::kAccept: rj["target"] = "ACCEPT"; break;
            case RuleTarget::kDrop: rj["target"] = "DROP"; break;
            case RuleTarget::kReturn: rj["target"] = "RETURN"; break;
            case RuleTarget::kJump: rj["target"] = r.jump_chain; break;
          }
          rules.push_back(rj);
        }
        attrs["rules"] = rules;
        out.push_back({nl::MsgType::kNewRule, attrs});
      }
      break;
    }
    case nl::DumpKind::kSets: {
      for (const IpSet* s : ipsets_.dump()) {
        util::Json attrs = util::Json::object();
        attrs["set"] = s->name();
        attrs["type"] =
            s->type() == IpSetType::kHashIp ? "hash:ip" : "hash:net";
        attrs["size"] = static_cast<std::int64_t>(s->size());
        out.push_back({nl::MsgType::kNewSet, attrs});
      }
      break;
    }
    case nl::DumpKind::kServices: {
      for (const VirtualService& svc : ipvs_.services()) {
        util::Json attrs = util::Json::object();
        attrs["vip"] = svc.vip.to_string();
        attrs["port"] = static_cast<int>(svc.port);
        attrs["proto"] = static_cast<int>(svc.proto);
        attrs["scheduler"] =
            svc.scheduler == IpvsScheduler::kRoundRobin ? "rr" : "sh";
        util::Json backends = util::Json::array();
        for (const RealServer& rs : svc.backends) {
          util::Json b = util::Json::object();
          b["addr"] = rs.addr.to_string();
          b["port"] = static_cast<int>(rs.port);
          b["weight"] = static_cast<std::int64_t>(rs.weight);
          backends.push_back(b);
        }
        attrs["backends"] = backends;
        out.push_back({nl::MsgType::kNewService, attrs});
      }
      break;
    }
    case nl::DumpKind::kSysctls: {
      for (const auto& [key, value] : sysctls_) {
        util::Json attrs = util::Json::object();
        attrs["key"] = key;
        attrs["value"] = value;
        out.push_back({nl::MsgType::kSysctl, attrs});
      }
      break;
    }
  }
  return out;
}

void Kernel::register_l4_handler(std::uint8_t proto, std::uint16_t port,
                                 L4Handler handler) {
  l4_handlers_[{proto, port}] = std::move(handler);
}

}  // namespace linuxfp::kern
