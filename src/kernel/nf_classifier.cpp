#include "kernel/nf_classifier.h"

#include <algorithm>

namespace linuxfp::kern {

namespace {

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return h;
}

inline std::uint64_t hash_str(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

inline std::uint32_t mask_for(std::uint8_t len) {
  return len == 0 ? 0u : ~0u << (32 - len);
}

}  // namespace

bool NfClassifier::indexable(const RuleMatch& m) {
  if (m.src && m.src_negated) return false;
  if (m.dst && m.dst_negated) return false;
  if (!m.match_set.empty()) return false;  // live set contents stay residual
  if (!m.ct_state.empty()) return false;   // per-packet dynamic state
  return true;
}

NfClassifier::TupleSig NfClassifier::signature_of(const RuleMatch& m) {
  TupleSig sig;
  if (m.src) sig.src_len = m.src->prefix_len();
  if (m.dst) sig.dst_len = m.dst->prefix_len();
  sig.has_proto = m.proto.has_value();
  sig.has_sport = m.sport.has_value();
  sig.has_dport = m.dport.has_value();
  sig.has_in_if = !m.in_if.empty();
  sig.has_out_if = !m.out_if.empty();
  return sig;
}

std::uint64_t NfClassifier::key_of_rule(const RuleMatch& m,
                                        const TupleSig& sig) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  if (sig.src_len != 255) {
    h = mix(h, m.src->network().value() & mask_for(sig.src_len));
  }
  if (sig.dst_len != 255) {
    h = mix(h, m.dst->network().value() & mask_for(sig.dst_len));
  }
  if (sig.has_proto) h = mix(h, *m.proto);
  if (sig.has_sport) h = mix(h, *m.sport);
  if (sig.has_dport) h = mix(h, *m.dport);
  if (sig.has_in_if) h = mix(h, hash_str(m.in_if));
  if (sig.has_out_if) h = mix(h, hash_str(m.out_if));
  return h;
}

std::uint64_t NfClassifier::key_of_packet(const NfPacketInfo& info,
                                          const TupleSig& sig) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  if (sig.src_len != 255) h = mix(h, info.src.value() & mask_for(sig.src_len));
  if (sig.dst_len != 255) h = mix(h, info.dst.value() & mask_for(sig.dst_len));
  if (sig.has_proto) h = mix(h, info.proto);
  if (sig.has_sport) h = mix(h, info.sport);
  if (sig.has_dport) h = mix(h, info.dport);
  if (sig.has_in_if) h = mix(h, hash_str(info.in_if));
  if (sig.has_out_if) h = mix(h, hash_str(info.out_if));
  return h;
}

void NfClassifier::index_rule(ChainIndex& index, const Rule& rule,
                              std::uint32_t rule_idx) {
  if (!indexable(rule.match)) {
    index.residual.push_back(rule_idx);
    return;
  }
  TupleSig sig = signature_of(rule.match);
  TupleGroup* group = nullptr;
  for (TupleGroup& g : index.groups) {
    if (g.sig == sig) {
      group = &g;
      break;
    }
  }
  if (!group) {
    index.groups.emplace_back();
    index.groups.back().sig = sig;
    group = &index.groups.back();
  }
  group->buckets[key_of_rule(rule.match, sig)].push_back(rule_idx);
}

void NfClassifier::rebuild_chain(const std::string& chain) {
  const Chain* c = nf_.find_chain(chain);
  if (!c) {
    chains_.erase(chain);
    return;
  }
  ChainIndex index;
  for (std::size_t i = 0; i < c->rules.size(); ++i) {
    index_rule(index, c->rules[i], static_cast<std::uint32_t>(i));
  }
  chains_[chain] = std::move(index);
}

void NfClassifier::build_all(std::uint64_t generation) {
  chains_.clear();
  for (const Chain* c : nf_.dump()) rebuild_chain(c->name);
  ++full_builds_;
  built_generation_ = generation;
}

void NfClassifier::on_append(const std::string& chain,
                             std::uint64_t generation) {
  const Chain* c = nf_.find_chain(chain);
  if (c && !c->rules.empty()) {
    // Appending keeps every existing index valid and the new index is the
    // largest, so bucket vectors stay ascending: O(1) incremental update.
    index_rule(chains_[chain], c->rules.back(),
               static_cast<std::uint32_t>(c->rules.size() - 1));
    ++incremental_appends_;
  }
  built_generation_ = generation;
}

void NfClassifier::on_chain_mutated(const std::string& chain,
                                    std::uint64_t generation) {
  rebuild_chain(chain);
  ++chain_rebuilds_;
  built_generation_ = generation;
}

void NfClassifier::on_chain_removed(const std::string& chain,
                                    std::uint64_t generation) {
  chains_.erase(chain);
  built_generation_ = generation;
}

std::size_t NfClassifier::tuple_count(const std::string& chain) const {
  auto it = chains_.find(chain);
  return it == chains_.end() ? 0 : it->second.groups.size();
}

std::size_t NfClassifier::residual_count(const std::string& chain) const {
  auto it = chains_.find(chain);
  return it == chains_.end() ? 0 : it->second.residual.size();
}

std::size_t NfClassifier::first_match(const Chain& chain,
                                      const NfPacketInfo& info,
                                      const IpSetManager& ipsets,
                                      std::size_t pos,
                                      NfEvalResult& stats) const {
  auto it = chains_.find(chain.name);
  if (it == chains_.end()) {
    // No index (chain created empty and never appended to): nothing matches.
    return kNoMatch;
  }
  const ChainIndex& index = it->second;

  // Best candidate among the tuple groups: one hash probe per group, then
  // the first bucket entry >= pos. Bucket entries share a hash, not
  // necessarily a key, so each candidate is verified with the real matcher
  // (tuple rules carry no ipset/state matches, so verification is free of
  // observable side effects).
  std::size_t candidate = kNoMatch;
  for (const TupleGroup& g : index.groups) {
    ++stats.tuple_probes;
    auto bucket = g.buckets.find(key_of_packet(info, g.sig));
    if (bucket == g.buckets.end()) continue;
    const std::vector<std::uint32_t>& rules = bucket->second;
    for (auto ri = std::lower_bound(rules.begin(), rules.end(), pos);
         ri != rules.end() && *ri < candidate; ++ri) {
      if (Netfilter::rule_matches(chain.rules[*ri], info, ipsets, stats)) {
        candidate = *ri;
        break;
      }
    }
  }

  // Residual rules (negations, ipset matches, conntrack state) are scanned
  // in first-match order, but only inside the window the linear scan would
  // have covered: [pos, candidate). This keeps ipset probe accounting exact
  // — no residual rule past the linear scan's stopping point is evaluated.
  for (auto ri = std::lower_bound(index.residual.begin(),
                                  index.residual.end(), pos);
       ri != index.residual.end() && *ri < candidate; ++ri) {
    ++stats.residual_examined;
    if (Netfilter::rule_matches(chain.rules[*ri], info, ipsets, stats)) {
      return *ri;
    }
  }
  return candidate;
}

}  // namespace linuxfp::kern
