// Forwarding Information Base: an LPM binary trie over IPv4 prefixes,
// modeling the kernel's fib_trie. This is the authoritative routing state
// shared by the slow path and (via the bpf_fib_lookup helper) the fast path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipaddr.h"
#include "util/result.h"

namespace linuxfp::kern {

enum class RouteScope { kLink, kGlobal };  // link = directly connected subnet

struct Route {
  net::Ipv4Prefix dst;
  net::Ipv4Addr gateway;   // zero for directly connected routes
  int oif = 0;             // egress interface index
  RouteScope scope = RouteScope::kGlobal;
  std::uint32_t metric = 0;

  bool operator==(const Route& o) const {
    return dst == o.dst && gateway == o.gateway && oif == o.oif &&
           scope == o.scope && metric == o.metric;
  }
};

struct FibResult {
  Route route;
  // The address to resolve at L2: the gateway, or the destination itself for
  // directly connected routes.
  net::Ipv4Addr next_hop;
};

class Fib {
 public:
  Fib();
  ~Fib();
  Fib(const Fib&) = delete;
  Fib& operator=(const Fib&) = delete;

  // Inserts or replaces the route for (prefix, metric).
  void add_route(const Route& route);
  // Removes the route with exactly this prefix; returns false if absent.
  bool del_route(const net::Ipv4Prefix& prefix);
  // Removes all routes whose egress is this interface (link-down semantics).
  std::vector<Route> purge_interface(int ifindex);

  // Longest-prefix-match lookup.
  std::optional<FibResult> lookup(net::Ipv4Addr dst) const;

  std::vector<Route> dump() const;
  std::size_t size() const { return size_; }

  // Number of trie nodes visited by the last lookup (exposed so the cost
  // model can scale lookup cost with trie depth if desired).
  std::size_t last_lookup_depth() const { return last_depth_; }

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  mutable std::size_t last_depth_ = 0;
};

}  // namespace linuxfp::kern
