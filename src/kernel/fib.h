// Forwarding Information Base: an LPM binary trie over IPv4 prefixes,
// modeling the kernel's fib_trie. This is the authoritative routing state
// shared by the slow path and (via the bpf_fib_lookup helper) the fast path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipaddr.h"
#include "util/result.h"

namespace linuxfp::kern {

enum class RouteScope { kLink, kGlobal };  // link = directly connected subnet

struct Route {
  net::Ipv4Prefix dst;
  net::Ipv4Addr gateway;   // zero for directly connected routes
  int oif = 0;             // egress interface index
  RouteScope scope = RouteScope::kGlobal;
  std::uint32_t metric = 0;

  bool operator==(const Route& o) const {
    return dst == o.dst && gateway == o.gateway && oif == o.oif &&
           scope == o.scope && metric == o.metric;
  }
};

struct FibResult {
  Route route;
  // The address to resolve at L2: the gateway, or the destination itself for
  // directly connected routes.
  net::Ipv4Addr next_hop;
  // Number of trie nodes visited by this lookup (the cost model / metrics
  // layer scales lookup cost with trie depth). Returned per-result rather
  // than stored on the Fib so concurrent readers never race.
  std::size_t depth = 0;
};

class Fib {
 public:
  Fib();
  ~Fib();
  Fib(const Fib&) = delete;
  Fib& operator=(const Fib&) = delete;

  // Inserts or replaces the route for (prefix, metric): same-prefix routes
  // with distinct metrics coexist (a backup route survives), and re-adding
  // an existing (prefix, metric) replaces it, mirroring `ip route replace`.
  void add_route(const Route& route);
  // Removes a route for this prefix. With a metric, removes exactly
  // (prefix, metric); without, removes the active (lowest-metric) route.
  // Returns false if no matching route exists.
  bool del_route(const net::Ipv4Prefix& prefix,
                 std::optional<std::uint32_t> metric = std::nullopt);
  // The route del_route would remove, without removing it.
  std::optional<Route> get_route(
      const net::Ipv4Prefix& prefix,
      std::optional<std::uint32_t> metric = std::nullopt) const;
  // Removes all routes whose egress is this interface (link-down semantics).
  std::vector<Route> purge_interface(int ifindex);

  // Longest-prefix-match lookup; among same-prefix routes the lowest metric
  // wins.
  std::optional<FibResult> lookup(net::Ipv4Addr dst) const;

  std::vector<Route> dump() const;
  std::size_t size() const { return size_; }

  // Monotonic mutation counter: bumped whenever the route set changes.
  // Fast-path caches snapshot it and revalidate with a relaxed load, so a
  // stale cached FIB decision can never outlive the mutation that made it
  // stale.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  struct Node;
  Node* walk_to(const net::Ipv4Prefix& prefix) const;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace linuxfp::kern
