#include "kernel/conntrack.h"

namespace linuxfp::kern {

net::FlowKey Conntrack::reversed(const net::FlowKey& key) {
  net::FlowKey r;
  r.src_ip = key.dst_ip;
  r.dst_ip = key.src_ip;
  r.proto = key.proto;
  r.src_port = key.dst_port;
  r.dst_port = key.src_port;
  return r;
}

Conntrack::LookupResult Conntrack::lookup(const net::FlowKey& key,
                                          std::uint64_t now_ns) {
  LookupResult res;
  auto it = table_.find(key);
  if (it != table_.end()) {
    res.entry = &it->second;
    res.is_reply_direction = false;
  } else {
    it = table_.find(reversed(key));
    if (it != table_.end()) {
      res.entry = &it->second;
      res.is_reply_direction = true;
    } else {
      // Post-NAT reply tuple (backend -> client after an ipvs DNAT).
      auto nat = nat_index_.find(key);
      if (nat != nat_index_.end()) {
        it = table_.find(nat->second);
        if (it != table_.end()) {
          res.entry = &it->second;
          res.is_reply_direction = true;
        }
      }
    }
  }
  if (res.entry) {
    res.entry->last_seen_ns = now_ns;
    ++res.entry->packets;
    if (res.is_reply_direction && res.entry->state == CtState::kNew) {
      res.entry->state = CtState::kEstablished;
    }
  }
  return res;
}

Conntrack::LookupResult Conntrack::lookup_or_create(const net::FlowKey& key,
                                                    std::uint64_t now_ns) {
  LookupResult res = lookup(key, now_ns);
  if (res.entry) return res;
  CtEntry e;
  e.original = key;
  e.state = CtState::kNew;
  e.created_ns = now_ns;
  e.last_seen_ns = now_ns;
  e.packets = 1;
  auto [it, inserted] = table_.emplace(key, e);
  res.entry = &it->second;
  res.created = inserted;
  if (inserted) generation_.fetch_add(1, std::memory_order_relaxed);
  return res;
}

void Conntrack::set_dnat(CtEntry& entry, net::Ipv4Addr addr,
                         std::uint16_t port) {
  entry.dnat_addr = addr;
  entry.dnat_port = port;
  // Reply tuple: backend -> client.
  net::FlowKey reply;
  reply.src_ip = addr;
  reply.src_port = port;
  reply.dst_ip = entry.original.src_ip;
  reply.dst_port = entry.original.src_port;
  reply.proto = entry.original.proto;
  nat_index_[reply] = entry.original;
  generation_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Conntrack::expire_idle(std::uint64_t now_ns,
                                   std::uint64_t idle_ns) {
  std::size_t removed = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (now_ns - it->second.last_seen_ns > idle_ns) {
      if (it->second.dnat_addr) {
        net::FlowKey reply;
        reply.src_ip = *it->second.dnat_addr;
        reply.src_port = it->second.dnat_port;
        reply.dst_ip = it->second.original.src_ip;
        reply.dst_port = it->second.original.src_port;
        reply.proto = it->second.original.proto;
        nat_index_.erase(reply);
      }
      it = table_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) generation_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

std::vector<const CtEntry*> Conntrack::dump() const {
  std::vector<const CtEntry*> out;
  out.reserve(table_.size());
  for (const auto& [key, entry] : table_) out.push_back(&entry);
  return out;
}

}  // namespace linuxfp::kern
