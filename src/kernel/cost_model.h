// Cycle cost model for the simulated datapath.
//
// Every stage of packet processing charges cycles here; throughput and
// latency in the benchmarks are derived from these counters, so this file is
// the single calibration point of the reproduction (DESIGN.md §5).
//
// Calibration targets (paper, CloudLab c6525-25g, Linux 6.6, 64 B packets,
// single core):
//   - Linux IP forwarding            ~1.00 Mpps   (Fig 5 baseline)
//   - LinuxFP XDP forwarding          1.768 Mpps  (Table VII)
//   - LinuxFP XDP bridging            1.915 Mpps  (Table VII)
//   - LinuxFP XDP filtering(+fwd)     1.183 Mpps  (Table VII, 100 rules)
//   - LinuxFP TC  forwarding          0.850 Mpps  (Table VII)
//   - CPU frequency model: 2.4 GHz; NIC: 25 Gbps.
//
// The numbers below are per-packet cycle charges for each logical kernel
// stage, loosely following where time goes in real kernel profiles (Fig 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace linuxfp::kern {

struct CostModel {
  // --- CPU / NIC model -------------------------------------------------
  double cpu_hz = 2.4e9;
  double nic_bps = 25e9;

  // --- Driver / NIC ----------------------------------------------------
  std::uint64_t driver_rx = 190;   // NAPI poll, DMA sync, descriptor
  std::uint64_t driver_tx = 160;   // descriptor write, doorbell (amortized)
  // Split TX cost for the engine's xmit_more path (DESIGN.md §16): when a
  // TX batcher is installed, dev_xmit charges only the descriptor write per
  // packet and the batcher charges one doorbell per burst. driver_tx above
  // stays as the calibrated pre-amortized constant for non-engine paths.
  std::uint64_t tx_descriptor = 60;   // descriptor write + DMA map, no MMIO
  std::uint64_t tx_doorbell = 500;    // doorbell MMIO + PCIe posted write

  // --- GRO / GSO (engine TX subsystem, DESIGN.md §16) -------------------
  std::uint64_t gro_receive = 90;   // per-segment flow match + header fold
  std::uint64_t gso_segment = 55;   // per-produced-segment header fixup at TX

  // --- Generic stack entry ----------------------------------------------
  std::uint64_t skb_alloc = 380;       // build_skb + memset + metadata
  std::uint64_t netif_receive = 250;   // taps, RPS, protocol demux
  std::uint64_t skb_free = 90;

  // --- Bridge (slow path) -----------------------------------------------
  std::uint64_t br_handle_frame = 350;  // port lookup, STP state check
  std::uint64_t br_fdb_lookup = 400;    // hash lookup
  std::uint64_t br_fdb_learn = 280;     // learning/refresh
  std::uint64_t br_forward = 380;       // egress port handling
  std::uint64_t br_flood_per_port = 210;  // clone + queue per flooded port

  // --- IPv4 (slow path) ---------------------------------------------------
  std::uint64_t ip_rcv = 445;          // header checks, csum validate
  std::uint64_t fib_lookup = 450;      // fib_table_lookup (LPM)
  std::uint64_t ip_forward = 220;      // TTL, options, mtu checks
  std::uint64_t neigh_lookup = 220;    // arp cache hit
  std::uint64_t dev_queue_xmit = 480;  // qdisc path (folded into the
                                       // ip_rcv/driver_tx calibration; kept
                                       // as the reference constant)
  std::uint64_t ip_local_deliver = 310;
  std::uint64_t socket_queue = 350;    // sk data queueing + wakeup issue

  // --- Netfilter ----------------------------------------------------------
  std::uint64_t nf_hook_base = 90;     // hook traversal with >=1 rule
  std::uint64_t ipt_per_rule = 15;     // linear per-rule match cost
  // Compiled classifier (DESIGN.md §17): one charge per tuple-group hash
  // probe (mask + hash + bucket walk) instead of per rule; residual rules
  // still pay ipt_per_rule. Calibrated ≈ one hash-map probe on cold cache.
  std::uint64_t ipt_clf_probe = 90;
  std::uint64_t ipset_lookup = 110;    // hash/LPM set probe
  std::uint64_t conntrack_lookup = 240;
  std::uint64_t conntrack_new = 520;

  // --- ipvs -----------------------------------------------------------------
  std::uint64_t ipvs_match = 130;     // service table probe
  std::uint64_t ipvs_schedule = 420;  // scheduler + conntrack NAT setup
  std::uint64_t nat_rewrite = 150;    // header rewrite + checksum fix

  // --- ARP / ICMP slow path -------------------------------------------------
  std::uint64_t arp_process = 600;
  std::uint64_t icmp_process = 800;

  // --- eBPF execution -----------------------------------------------------
  std::uint64_t xdp_hook_overhead = 155;  // prog dispatch, metadata setup
  std::uint64_t tc_hook_overhead = 150;   // cls_bpf dispatch on sk_buff
  // Extra kernel work that the TC path cannot avoid compared to XDP
  // (GRO/flow dissection and sk_buff conversion costs; calibrated against
  // the Table VII XDP/TC gap).
  std::uint64_t tc_path_extra = 810;
  std::uint64_t bpf_insn = 2;             // per interpreted instruction
  std::uint64_t bpf_helper_base = 40;     // call overhead for any helper
  std::uint64_t bpf_tail_call = 12;       // prog-array jump (JITed cost)
  std::uint64_t bpf_map_array = 25;
  std::uint64_t bpf_map_hash = 70;
  std::uint64_t bpf_map_lpm = 130;
  std::uint64_t bpf_fib_lookup_helper = 450;   // fib + neigh resolution
  std::uint64_t bpf_fdb_lookup_helper = 420;   // fdb hash + port state
  std::uint64_t bpf_ipt_per_rule = 5;         // in-helper linear match
  // In-helper tuple probe when the compiled classifier answers the lookup
  // (cheaper than the slow-path twin: no skb field re-extraction).
  std::uint64_t bpf_ipt_clf_probe = 45;
  std::uint64_t bpf_redirect = 170;            // devmap redirect + tx queue
  // Microflow verdict-cache hit: hash index + key compare + generation
  // vector validation + header diff replay (no interpreter).
  std::uint64_t flowcache_hit = 30;

  // --- Per-byte costs (copies / checksum touch), cycles per byte ----------
  double per_byte_rx = 0.022;   // DMA/cache-line touch on receive
  double per_byte_slow = 0.085; // extra slow-path per-byte (csum, copies)

  // --- Container / veth path ----------------------------------------------
  std::uint64_t veth_xmit = 240;        // veth pair crossing (softirq)
  std::uint64_t process_wakeup = 2600;  // scheduler wakeup of a blocked task
  std::uint64_t vxlan_encap = 450;
  std::uint64_t vxlan_decap = 420;

  // Converts cycles to seconds under the CPU model.
  double cycles_to_seconds(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / cpu_hz;
  }
  double cycles_to_us(std::uint64_t cycles) const {
    return cycles_to_seconds(cycles) * 1e6;
  }
};

// A per-packet cycle accumulator with an optional stage trace. The stage
// trace is what bench_fig1_hotspots uses to reconstruct the paper's flame
// graph observation (most packets traverse the same stage sequence).
//
// Each charge() is also the observability layer's emission site: when a
// kernel binds its StageSink the charge feeds the per-stage counters, and
// when a packet trace is active the charge appends an ordered trace event.
class CycleTrace {
 public:
  explicit CycleTrace(bool record_stages = false)
      : record_(record_stages) {}

  void charge(const char* stage, std::uint64_t cycles) {
    total_ += cycles;
    if (record_) stages_.emplace_back(stage, cycles);
    if (sink_) sink_->charge(stage, cycles);
    if (ptrace_) ptrace_->add("slow", stage, cycles);
  }
  void charge_bytes(const char* stage, double per_byte, std::size_t bytes) {
    charge(stage, static_cast<std::uint64_t>(per_byte * static_cast<double>(bytes)));
  }

  std::uint64_t total() const { return total_; }
  const std::vector<std::pair<const char*, std::uint64_t>>& stages() const {
    return stages_;
  }
  bool recording() const { return record_; }

  // Kernel::rx binds/restores these around a packet; a veth hop into another
  // kernel re-binds so each stage is attributed to the kernel that ran it.
  void bind_sink(util::StageSink* sink) { sink_ = sink; }
  util::StageSink* sink() const { return sink_; }
  void bind_packet_trace(util::PacketTrace* trace) { ptrace_ = trace; }
  util::PacketTrace* packet_trace() const { return ptrace_; }

 private:
  bool record_;
  std::uint64_t total_ = 0;
  util::StageSink* sink_ = nullptr;
  util::PacketTrace* ptrace_ = nullptr;
  std::vector<std::pair<const char*, std::uint64_t>> stages_;
};

}  // namespace linuxfp::kern
