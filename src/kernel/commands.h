// Command-line tool front-ends: parses iproute2 / brctl / iptables / ipset /
// sysctl command strings and applies them to a Kernel.
//
// This is the "unmodified tooling" surface of the reproduction: examples,
// tests and benchmarks configure the system exclusively through these
// commands (never through controller APIs), demonstrating the paper's
// transparency claim — the LinuxFP controller only learns about changes via
// netlink introspection.
#pragma once

#include <string>

#include "kernel/kernel.h"
#include "util/result.h"

namespace linuxfp::kern {

// Executes one command line, e.g.
//   ip link add br0 type bridge
//   ip link set dev eth0 up
//   ip link set eth1 master br0
//   ip addr add 10.10.1.1/24 dev eth0
//   ip route add 10.2.0.0/16 via 10.10.1.2 dev eth0
//   ip neigh add 10.10.1.2 lladdr 02:00:00:00:00:05 dev eth0 nud permanent
//   sysctl -w net.ipv4.ip_forward=1
//   brctl addbr br0 | brctl addif br0 veth11 | brctl stp br0 on
//   bridge vlan add dev veth11 vid 100 [pvid untagged]
//   bridge fdb add 02:..:01 dev veth11 [vlan 100]
//   iptables -A FORWARD -s 10.10.3.0/24 -j DROP
//   iptables -A FORWARD -p tcp --dport 80 -j ACCEPT
//   iptables -A FORWARD -m set --match-set blacklist src -j DROP
//   iptables -P FORWARD DROP | iptables -F FORWARD | iptables -N mychain
//   ipset create blacklist hash:ip | ipset add blacklist 10.9.0.1
util::Status run_command(Kernel& kernel, const std::string& command_line);

}  // namespace linuxfp::kern
