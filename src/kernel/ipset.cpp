#include "kernel/ipset.h"

namespace linuxfp::kern {

util::Status IpSet::add(const net::Ipv4Prefix& member) {
  if (type_ == IpSetType::kHashIp) {
    if (member.prefix_len() != 32) {
      return util::Error::make("ipset.type",
                               "hash:ip set accepts only /32 members");
    }
    // Re-adding an existing member is a no-op even at capacity (kernel
    // behaviour: -exist only matters for the error, the entry stays).
    if (!ips_.count(member.network()) && ips_.size() >= maxelem_) {
      return util::Error::make("ipset.full",
                               "set " + name_ + " is full (maxelem " +
                                   std::to_string(maxelem_) + ")");
    }
    if (ips_.insert(member.network()).second) bump_generation();
  } else {
    if (!nets_.count(member) && nets_.size() >= maxelem_) {
      return util::Error::make("ipset.full",
                               "set " + name_ + " is full (maxelem " +
                                   std::to_string(maxelem_) + ")");
    }
    if (nets_.insert(member).second) bump_generation();
    net_lens_.insert(member.prefix_len());
  }
  return {};
}

bool IpSet::del(const net::Ipv4Prefix& member) {
  bool erased = type_ == IpSetType::kHashIp
                    ? ips_.erase(member.network()) > 0
                    : nets_.erase(member) > 0;
  if (erased) bump_generation();
  return erased;
}

bool IpSet::test(net::Ipv4Addr addr) const {
  if (type_ == IpSetType::kHashIp) {
    return ips_.count(addr) > 0;
  }
  // hash:net probes one hash per distinct prefix length, like the kernel.
  for (std::uint8_t len : net_lens_) {
    if (nets_.count(net::Ipv4Prefix(addr, len)) > 0) return true;
  }
  return false;
}

std::size_t IpSet::size() const {
  return type_ == IpSetType::kHashIp ? ips_.size() : nets_.size();
}

std::vector<net::Ipv4Prefix> IpSet::dump() const {
  std::vector<net::Ipv4Prefix> out;
  if (type_ == IpSetType::kHashIp) {
    for (const auto& ip : ips_) out.emplace_back(ip, 32);
  } else {
    out.assign(nets_.begin(), nets_.end());
  }
  return out;
}

util::Status IpSetManager::create(const std::string& name, IpSetType type,
                                  std::size_t maxelem) {
  if (sets_.count(name)) {
    return util::Error::make("ipset.exists", "set exists: " + name);
  }
  if (maxelem == 0) {
    return util::Error::make("ipset.maxelem", "maxelem must be >= 1");
  }
  sets_[name] = std::make_unique<IpSet>(name, type, maxelem, &generation_);
  generation_.fetch_add(1, std::memory_order_relaxed);
  return {};
}

util::Status IpSetManager::destroy(const std::string& name) {
  if (!sets_.erase(name)) {
    return util::Error::make("ipset.missing", "no such set: " + name);
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
  return {};
}

IpSet* IpSetManager::find(const std::string& name) {
  auto it = sets_.find(name);
  return it == sets_.end() ? nullptr : it->second.get();
}

const IpSet* IpSetManager::find(const std::string& name) const {
  auto it = sets_.find(name);
  return it == sets_.end() ? nullptr : it->second.get();
}

std::vector<const IpSet*> IpSetManager::dump() const {
  std::vector<const IpSet*> out;
  for (const auto& [name, set] : sets_) out.push_back(set.get());
  return out;
}

}  // namespace linuxfp::kern
