// Netfilter / iptables model: the `filter` table with built-in chains
// (INPUT/FORWARD/OUTPUT), user-defined chains, linear rule evaluation with
// per-rule hit counters, and ipset matches.
//
// The deliberate linear scan reproduces the iptables scalability behaviour
// the paper measures (Fig 8): cost grows with rule count unless rules are
// aggregated into an ipset. The rule list is the shared state the LinuxFP
// bpf_ipt_lookup helper reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernel/ipset.h"
#include "net/headers.h"
#include "net/ipaddr.h"
#include "util/result.h"

namespace linuxfp::kern {

class NfClassifier;

enum class NfHook { kPrerouting, kInput, kForward, kOutput, kPostrouting };

const char* nf_hook_name(NfHook hook);

enum class RuleTarget { kAccept, kDrop, kReturn, kJump };

enum class NfVerdict { kAccept, kDrop };

// What a rule can match on (subset of iptables matches sufficient for the
// paper's scenarios plus ports for the gateway whitelisting use case).
struct RuleMatch {
  std::optional<net::Ipv4Prefix> src;
  std::optional<net::Ipv4Prefix> dst;
  bool src_negated = false;
  bool dst_negated = false;
  std::optional<std::uint8_t> proto;
  std::optional<std::uint16_t> dport;
  std::optional<std::uint16_t> sport;
  std::string in_if;   // empty = any
  std::string out_if;  // empty = any
  // ipset match: set name + whether src or dst address is tested.
  std::string match_set;
  bool set_match_src = false;
  // conntrack state match (-m state / -m conntrack): empty = no state match.
  // Supported: "NEW", "ESTABLISHED" (RELATED folds into ESTABLISHED).
  std::string ct_state;
};

struct Rule {
  RuleMatch match;
  RuleTarget target = RuleTarget::kAccept;
  std::string jump_chain;  // for kJump
  // Hit counters are bumped during evaluation, which engine workers run
  // concurrently from several CPUs: relaxed atomics keep the counters exact
  // without ordering cost (they guard no other state).
  mutable std::atomic<std::uint64_t> hits{0};
  mutable std::atomic<std::uint64_t> hit_bytes{0};

  Rule() = default;
  Rule(const Rule& o)
      : match(o.match),
        target(o.target),
        jump_chain(o.jump_chain),
        hits(o.hits.load(std::memory_order_relaxed)),
        hit_bytes(o.hit_bytes.load(std::memory_order_relaxed)) {}
  Rule& operator=(const Rule& o) {
    match = o.match;
    target = o.target;
    jump_chain = o.jump_chain;
    hits.store(o.hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    hit_bytes.store(o.hit_bytes.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
};

struct Chain {
  std::string name;
  bool builtin = false;
  NfVerdict policy = NfVerdict::kAccept;  // builtin chains only
  std::vector<Rule> rules;
};

// Fields extracted from a packet for rule evaluation.
struct NfPacketInfo {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::uint8_t proto = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::string in_if;
  std::string out_if;
  std::size_t bytes = 0;
  // Conntrack state of the packet's flow: -1 unknown/untracked, 0 NEW,
  // 1 ESTABLISHED. Filled by the caller when conntrack is enabled.
  int ct_state = -1;
};

struct NfEvalResult {
  NfVerdict verdict = NfVerdict::kAccept;
  // Rules examined (linear-search work done). Identical on the linear and
  // the classified path — the classifier computes the window the linear scan
  // would have covered in O(1) — so differential tests can compare the
  // accounting bit-for-bit; only the cost CHARGED differs (see nf_eval_cost).
  std::size_t rules_examined = 0;
  std::size_t ipset_probes = 0;
  // Set when the compiled classifier produced this result; the cost model
  // then charges the algorithmic work below instead of the per-rule scan.
  bool compiled = false;
  std::size_t tuple_probes = 0;       // hash probes (one per tuple group)
  std::size_t residual_examined = 0;  // residual rules linearly compared
};

// Cycles a netfilter evaluation costs under the given charge constants:
// per-rule scan work on the linear path, per-tuple probe + residual compare
// work on the compiled path. ipset probes cost the same on both.
inline std::uint64_t nf_eval_cost(const NfEvalResult& r,
                                  std::uint64_t hook_base,
                                  std::uint64_t per_rule,
                                  std::uint64_t clf_probe,
                                  std::uint64_t ipset_cost) {
  std::uint64_t cycles = hook_base + ipset_cost * r.ipset_probes;
  if (r.compiled) {
    cycles += clf_probe * r.tuple_probes + per_rule * r.residual_examined;
  } else {
    cycles += per_rule * r.rules_examined;
  }
  return cycles;
}

class Netfilter {
 public:
  Netfilter();
  ~Netfilter();

  // --- chain management -----------------------------------------------------
  util::Status new_chain(const std::string& name);
  util::Status delete_chain(const std::string& name);
  util::Status set_policy(const std::string& chain, NfVerdict policy);
  util::Status flush(const std::string& chain);

  // --- rule management --------------------------------------------------------
  util::Status append_rule(const std::string& chain, Rule rule);
  util::Status insert_rule(const std::string& chain, std::size_t index,
                           Rule rule);
  util::Status delete_rule(const std::string& chain, std::size_t index);

  Chain* find_chain(const std::string& name);
  const Chain* find_chain(const std::string& name) const;
  std::vector<const Chain*> dump() const;

  // Total rules in the chain reachable tree from `chain` (for introspection).
  std::size_t rule_count(const std::string& chain) const;
  bool has_any_rules_on(NfHook hook) const;

  static const char* builtin_chain_for(NfHook hook);

  // --- evaluation --------------------------------------------------------------
  // Evaluates the builtin chain for `hook` against the packet. `ipsets` is
  // consulted for match-set rules.
  NfEvalResult evaluate(NfHook hook, const NfPacketInfo& info,
                        const IpSetManager& ipsets) const;

  // Monotonic generation, bumped by every mutation; the LinuxFP controller
  // uses it to detect configuration changes cheaply, and fast-path caches
  // revalidate memoized verdicts against it (hence atomic: bumped on the
  // control-plane thread, read with relaxed loads from engine workers).
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  // --- compiled classifier (DESIGN.md §17) ---------------------------------
  // Opt-in tuple-space index over the rule tables, rebuilt at rule-change
  // time; evaluate() uses it when it is current, with exact linear-scan
  // semantics, and falls back to the scan otherwise. Control-plane call.
  void set_classifier_enabled(bool enabled);
  bool classifier_enabled() const { return classifier_ != nullptr; }
  NfClassifier* classifier() { return classifier_.get(); }
  const NfClassifier* classifier() const { return classifier_.get(); }

  // Single-rule match predicate shared by the linear scan and the
  // classifier's verification/residual paths (accounts ipset probes).
  static bool rule_matches(const Rule& rule, const NfPacketInfo& info,
                           const IpSetManager& ipsets, NfEvalResult& stats);

 private:
  NfVerdict eval_chain(const Chain& chain, const NfPacketInfo& info,
                       const IpSetManager& ipsets, NfEvalResult& stats,
                       int depth, bool& decided) const;
  NfVerdict eval_chain_classified(const Chain& chain, const NfPacketInfo& info,
                                  const IpSetManager& ipsets,
                                  NfEvalResult& stats, int depth,
                                  bool& decided) const;

  std::map<std::string, Chain> chains_;
  std::atomic<std::uint64_t> generation_{0};
  std::unique_ptr<NfClassifier> classifier_;
};

}  // namespace linuxfp::kern
