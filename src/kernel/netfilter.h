// Netfilter / iptables model: the `filter` table with built-in chains
// (INPUT/FORWARD/OUTPUT), user-defined chains, linear rule evaluation with
// per-rule hit counters, and ipset matches.
//
// The deliberate linear scan reproduces the iptables scalability behaviour
// the paper measures (Fig 8): cost grows with rule count unless rules are
// aggregated into an ipset. The rule list is the shared state the LinuxFP
// bpf_ipt_lookup helper reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "kernel/ipset.h"
#include "net/headers.h"
#include "net/ipaddr.h"
#include "util/result.h"

namespace linuxfp::kern {

enum class NfHook { kPrerouting, kInput, kForward, kOutput, kPostrouting };

const char* nf_hook_name(NfHook hook);

enum class RuleTarget { kAccept, kDrop, kReturn, kJump };

enum class NfVerdict { kAccept, kDrop };

// What a rule can match on (subset of iptables matches sufficient for the
// paper's scenarios plus ports for the gateway whitelisting use case).
struct RuleMatch {
  std::optional<net::Ipv4Prefix> src;
  std::optional<net::Ipv4Prefix> dst;
  bool src_negated = false;
  bool dst_negated = false;
  std::optional<std::uint8_t> proto;
  std::optional<std::uint16_t> dport;
  std::optional<std::uint16_t> sport;
  std::string in_if;   // empty = any
  std::string out_if;  // empty = any
  // ipset match: set name + whether src or dst address is tested.
  std::string match_set;
  bool set_match_src = false;
  // conntrack state match (-m state / -m conntrack): empty = no state match.
  // Supported: "NEW", "ESTABLISHED" (RELATED folds into ESTABLISHED).
  std::string ct_state;
};

struct Rule {
  RuleMatch match;
  RuleTarget target = RuleTarget::kAccept;
  std::string jump_chain;  // for kJump
  mutable std::uint64_t hits = 0;
  mutable std::uint64_t hit_bytes = 0;
};

struct Chain {
  std::string name;
  bool builtin = false;
  NfVerdict policy = NfVerdict::kAccept;  // builtin chains only
  std::vector<Rule> rules;
};

// Fields extracted from a packet for rule evaluation.
struct NfPacketInfo {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::uint8_t proto = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::string in_if;
  std::string out_if;
  std::size_t bytes = 0;
  // Conntrack state of the packet's flow: -1 unknown/untracked, 0 NEW,
  // 1 ESTABLISHED. Filled by the caller when conntrack is enabled.
  int ct_state = -1;
};

struct NfEvalResult {
  NfVerdict verdict = NfVerdict::kAccept;
  // Rules examined (linear-search work done); drives the cost model.
  std::size_t rules_examined = 0;
  std::size_t ipset_probes = 0;
};

class Netfilter {
 public:
  Netfilter();

  // --- chain management -----------------------------------------------------
  util::Status new_chain(const std::string& name);
  util::Status delete_chain(const std::string& name);
  util::Status set_policy(const std::string& chain, NfVerdict policy);
  util::Status flush(const std::string& chain);

  // --- rule management --------------------------------------------------------
  util::Status append_rule(const std::string& chain, Rule rule);
  util::Status insert_rule(const std::string& chain, std::size_t index,
                           Rule rule);
  util::Status delete_rule(const std::string& chain, std::size_t index);

  Chain* find_chain(const std::string& name);
  const Chain* find_chain(const std::string& name) const;
  std::vector<const Chain*> dump() const;

  // Total rules in the chain reachable tree from `chain` (for introspection).
  std::size_t rule_count(const std::string& chain) const;
  bool has_any_rules_on(NfHook hook) const;

  static const char* builtin_chain_for(NfHook hook);

  // --- evaluation --------------------------------------------------------------
  // Evaluates the builtin chain for `hook` against the packet. `ipsets` is
  // consulted for match-set rules.
  NfEvalResult evaluate(NfHook hook, const NfPacketInfo& info,
                        const IpSetManager& ipsets) const;

  // Monotonic generation, bumped by every mutation; the LinuxFP controller
  // uses it to detect configuration changes cheaply, and fast-path caches
  // revalidate memoized verdicts against it (hence atomic: bumped on the
  // control-plane thread, read with relaxed loads from engine workers).
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  NfVerdict eval_chain(const Chain& chain, const NfPacketInfo& info,
                       const IpSetManager& ipsets, NfEvalResult& stats,
                       int depth, bool& decided) const;
  static bool rule_matches(const Rule& rule, const NfPacketInfo& info,
                           const IpSetManager& ipsets, NfEvalResult& stats);

  std::map<std::string, Chain> chains_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace linuxfp::kern
