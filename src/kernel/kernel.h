// The Kernel facade: one instance models one network namespace (a host, or a
// pod's netns). It owns all networking state — devices, FIB, neighbour
// table, bridges, netfilter, ipsets, conntrack, sysctls — runs the slow-path
// datapath with cycle accounting, invokes attached fast-path programs at the
// XDP/TC hooks, and publishes configuration changes on the netlink bus.
//
// All configuration mutators emit netlink notifications, which is what makes
// the LinuxFP controller's transparent introspection work: tools (the
// command front-ends in commands.h) only talk to this class, never to the
// controller.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernel/bridge.h"
#include "kernel/conntrack.h"
#include "kernel/cost_model.h"
#include "kernel/fib.h"
#include "kernel/neigh.h"
#include "kernel/netdev.h"
#include "kernel/netfilter.h"
#include "kernel/ipset.h"
#include "kernel/ipvs.h"
#include "net/headers.h"
#include "net/packet.h"
#include "netlink/netlink.h"
#include "util/metrics.h"
#include "util/result.h"

namespace linuxfp::kern {

// Why a packet terminated in this kernel (for counters and tests).
enum class Drop {
  kNone,
  kLinkDown,
  kStpBlocked,
  kVlanFiltered,
  kPolicy,        // netfilter DROP
  kNoRoute,
  kTtlExceeded,
  kNeighPending,  // queued awaiting ARP resolution (not lost)
  kMalformed,
  kNotForUs,
  kXdpDrop,
  kTcDrop,
  kNoHandler,
  // Transmit toward an ifindex with no device behind it (e.g. an XDP
  // redirect verdict naming an ifindex that was never created or was
  // deleted). Distinct from kLinkDown: the device exists but is down.
  kNoDevice,
};

// Stable lower-case name for a drop reason ("policy", "no_route", ...);
// keys the registry's drop.* counters and the trace verdict strings.
const char* drop_name(Drop reason);

struct KernelCounters {
  std::uint64_t slow_path_packets = 0;
  std::uint64_t fast_path_packets = 0;  // consumed by an XDP/TC program
  std::uint64_t forwarded = 0;
  std::uint64_t bridged = 0;
  std::uint64_t flooded = 0;
  std::uint64_t locally_delivered = 0;
  std::uint64_t arp_rx = 0;
  std::uint64_t arp_tx = 0;
  std::uint64_t icmp_echo_replies = 0;
  std::uint64_t bpdus_processed = 0;
  std::map<Drop, std::uint64_t> drops;

  std::uint64_t total_drops() const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : drops) {
      if (k != Drop::kNone && k != Drop::kNeighPending) n += v;
    }
    return n;
  }
};

// Result of injecting one packet.
struct RxSummary {
  bool fast_path = false;  // terminally handled by an XDP/TC program
  Drop drop = Drop::kNone;
};

// One transmit attempt observed while a shadow capture was active: the
// egress device and the exact bytes handed to it (recorded before the
// link-state check, so an attempted xmit out a downed link still counts as
// "the slow path chose this interface/rewrite").
struct ShadowEmission {
  int ifindex = 0;
  net::Packet pkt;
};

// Receiver of shadow-capture results (the equivalence guard, core/guard.h).
// While a cookie is active, every dev_xmit records an emission; when the
// top-level rx that activated it completes, the observer gets the packet's
// terminal summary plus everything it transmitted.
class ShadowObserver {
 public:
  virtual ~ShadowObserver() = default;
  virtual void on_shadow_resolved(std::uint64_t cookie,
                                  const RxSummary& summary,
                                  std::vector<ShadowEmission>&& emissions) = 0;
};

// TX batching hook (DESIGN.md §16): when installed, dev_xmit routes the
// physical-NIC transmit cost through the batcher instead of charging the
// flat driver_tx constant. The batcher charges tx_descriptor per packet on
// the packet's own trace and defers the doorbell MMIO, ringing it once per
// xmit_more window — the skb->xmit_more contract: packets are still handed
// to the device immediately and in order; only the doorbell cost moves.
class TxBatcher {
 public:
  virtual ~TxBatcher() = default;
  // Called by dev_xmit for every packet posted to a physical device, after
  // DevStats accounting, instead of the driver_tx charge. `trace` is the
  // packet's cycle trace; implementations charge tx_descriptor (and, when
  // the pending window fills, one tx_doorbell) into it.
  virtual void post_descriptor(NetDevice& dev, std::size_t bytes,
                               CycleTrace& trace) = 0;
};

class Kernel : public nl::DumpProvider {
 public:
  explicit Kernel(std::string hostname, CostModel cost = CostModel{});
  ~Kernel() override;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const std::string& hostname() const { return hostname_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }

  // --- time ----------------------------------------------------------------
  std::uint64_t now_ns() const { return now_ns_; }
  void set_now_ns(std::uint64_t ns) { now_ns_ = ns; }
  // Periodic housekeeping: FDB aging, neighbour aging, conntrack expiry,
  // STP timers + BPDU emission.
  void tick();

  // --- device management ------------------------------------------------------
  NetDevice& add_phys_dev(const std::string& name);
  NetDevice& add_loopback();
  NetDevice& add_bridge_dev(const std::string& name);
  // veth pair within this kernel.
  std::pair<NetDevice*, NetDevice*> add_veth_pair(const std::string& a,
                                                  const std::string& b);
  // veth endpoint whose peer lives in another kernel (container netns).
  NetDevice& add_veth_to(const std::string& name, Kernel& peer_kernel,
                         const std::string& peer_name);
  NetDevice& add_vxlan_dev(const std::string& name, std::uint32_t vni,
                           net::Ipv4Addr local, int underlay_ifindex);
  util::Status del_dev(const std::string& name);

  NetDevice* dev(int ifindex);
  const NetDevice* dev(int ifindex) const;
  NetDevice* dev_by_name(const std::string& name);
  const NetDevice* dev_by_name(const std::string& name) const;
  std::vector<NetDevice*> devices();

  util::Status set_link_up(const std::string& name, bool up);
  util::Status enslave(const std::string& port, const std::string& bridge);
  util::Status release(const std::string& port);

  // --- addresses and routes ------------------------------------------------
  util::Status add_addr(const std::string& dev, const net::IfAddr& addr);
  util::Status del_addr(const std::string& dev, const net::IfAddr& addr);
  util::Status add_route(const net::Ipv4Prefix& dst, net::Ipv4Addr via,
                         const std::string& dev, std::uint32_t metric = 0);
  // Without a metric, deletes the active (lowest-metric) route for the
  // prefix; with one, deletes exactly (prefix, metric).
  util::Status del_route(const net::Ipv4Prefix& dst,
                         std::optional<std::uint32_t> metric = std::nullopt);
  util::Status add_neigh(net::Ipv4Addr ip, const net::MacAddr& mac,
                         const std::string& dev, bool permanent);
  util::Status del_neigh(net::Ipv4Addr ip);

  // --- sysctl -----------------------------------------------------------------
  util::Status set_sysctl(const std::string& key, int value);
  int sysctl(const std::string& key, int fallback = 0) const;
  bool ip_forward_enabled() const { return sysctl("net.ipv4.ip_forward") != 0; }

  // --- subsystem access (shared state the fast path reads via helpers) ------
  Fib& fib() { return fib_; }
  const Fib& fib() const { return fib_; }
  NeighborTable& neigh() { return neigh_; }
  const NeighborTable& neigh() const { return neigh_; }
  Netfilter& netfilter() { return netfilter_; }
  const Netfilter& netfilter() const { return netfilter_; }
  IpSetManager& ipsets() { return ipsets_; }
  const IpSetManager& ipsets() const { return ipsets_; }
  Conntrack& conntrack() { return conntrack_; }
  const Conntrack& conntrack() const { return conntrack_; }
  Ipvs& ipvs() { return ipvs_; }
  const Ipvs& ipvs() const { return ipvs_; }
  Bridge* bridge(int ifindex);
  const Bridge* bridge(int ifindex) const;
  Bridge* bridge_by_name(const std::string& name);
  std::vector<Bridge*> bridges();

  // Netfilter mutations via the kernel so change events are published.
  util::Status ipt_append(const std::string& chain, Rule rule);
  util::Status ipt_insert(const std::string& chain, std::size_t index, Rule r);
  util::Status ipt_delete(const std::string& chain, std::size_t index);
  util::Status ipt_flush(const std::string& chain);
  util::Status ipt_new_chain(const std::string& name);
  util::Status ipt_set_policy(const std::string& chain, NfVerdict policy);
  util::Status ipset_create(const std::string& name, IpSetType type,
                            std::size_t maxelem = kIpSetDefaultMaxElem);
  util::Status ipset_add(const std::string& name,
                         const net::Ipv4Prefix& member);
  util::Status ipset_del(const std::string& name,
                         const net::Ipv4Prefix& member);
  util::Status ipset_destroy(const std::string& name);

  // ipvs mutations via the kernel so change events are published.
  util::Status ipvs_add_service(net::Ipv4Addr vip, std::uint16_t port,
                                std::uint8_t proto, IpvsScheduler scheduler);
  util::Status ipvs_del_service(net::Ipv4Addr vip, std::uint16_t port,
                                std::uint8_t proto);
  util::Status ipvs_add_backend(net::Ipv4Addr vip, std::uint16_t port,
                                std::uint8_t proto, net::Ipv4Addr backend,
                                std::uint16_t backend_port,
                                std::uint32_t weight);

  // --- netlink ---------------------------------------------------------------
  nl::Bus& netlink() { return netlink_; }
  std::vector<nl::Message> dump(nl::DumpKind kind) const override;

  // --- datapath ----------------------------------------------------------------
  // Packet arrives on a device (from a NIC, a veth peer, or XDP_TX bounce).
  RxSummary rx(int ifindex, net::Packet&& pkt, CycleTrace& trace);

  // Engine handoff: a packet whose driver poll and XDP run already happened
  // on an engine worker enters the stack here — no driver_rx charge, no
  // device rx accounting (the engine reconciles those per queue) and no XDP
  // hook re-run. Must only be called from the engine's single slow-path
  // thread; it touches the same single-writer kernel state as rx().
  RxSummary rx_from_engine(int ifindex, net::Packet&& pkt, CycleTrace& trace);

  // Transmit out of a device from the stack / fast path.
  void dev_xmit(int ifindex, net::Packet&& pkt, CycleTrace& trace);

  // Host-originated IP packet (OUTPUT path: netfilter OUTPUT, FIB, neigh).
  void send_ip_packet(net::Packet&& pkt, CycleTrace& trace);

  // Local L4 delivery: handlers keyed by (proto, dst port); e.g. a netperf
  // server. Handler may synthesize replies via send_ip_packet.
  using L4Handler = std::function<void(Kernel& kernel,
                                       const net::ParsedPacket& info,
                                       const net::Packet& pkt,
                                       CycleTrace& trace)>;
  void register_l4_handler(std::uint8_t proto, std::uint16_t port,
                           L4Handler handler);

  const KernelCounters& counters() const { return counters_; }
  KernelCounters& mutable_counters() { return counters_; }

  // --- TX batching (engine xmit_more path, DESIGN.md §16) -------------------
  // At most one batcher; null detaches (dev_xmit then charges the legacy
  // amortized driver_tx). Must only change with no packet in flight; only
  // the single slow-path writer thread transmits, so no synchronization.
  void set_tx_batcher(TxBatcher* batcher) { tx_batcher_ = batcher; }
  TxBatcher* tx_batcher() const { return tx_batcher_; }

  // Segment-aware drop accounting for GRO super-packets: when the slow path
  // drops a coalesced packet it counted ONE drop; the engine (the only
  // caller, on the slow-path thread) adds the remaining segments so drop
  // counters match per-segment processing exactly.
  void note_extra_drops(Drop reason, std::uint64_t extra) {
    if (extra == 0) return;
    counters_.drops[reason] += extra;
    if (metrics_.enabled()) {
      util::bump(drop_counters_[static_cast<int>(reason)], extra);
    }
  }

  // --- observability --------------------------------------------------------
  // One registry per kernel holds slow-path stage counters, per-reason drop
  // counters and — once a controller wires them up — fast-path program,
  // helper and FPM counters (see util/metrics.h for the naming scheme).
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }
  // Master switch for metric emission on the datapath (counters keep their
  // values; bench overhead guard uses this).
  void set_metrics_enabled(bool on) { metrics_.set_enabled(on); }
  // Attach a trace ring: every top-level rx() then records its ordered
  // stage-by-stage journey through slow path and eBPF VM. Null detaches.
  void set_trace_ring(util::TraceRing* ring) { trace_ring_ = ring; }
  util::TraceRing* trace_ring() { return trace_ring_; }

  // --- shadow capture (equivalence guard) -----------------------------------
  // At most one observer; null detaches. Must only change with no packet in
  // flight. Only the single slow-path writer thread drives captures, so the
  // active-cookie state needs no synchronization.
  void set_shadow_observer(ShadowObserver* obs) { shadow_observer_ = obs; }
  ShadowObserver* shadow_observer() const { return shadow_observer_; }
  // Starts capturing emissions under `cookie` (non-zero). Returns false —
  // and captures nothing — when a capture is already active (a nested rx
  // via loopback/veth re-entry) or no observer is attached; the caller then
  // skips comparison for this packet. Resolution happens automatically when
  // the top-level rx()/rx_from_engine() that is executing completes.
  bool shadow_begin(std::uint64_t cookie);
  // FIB activity for the metrics layer; depth comes back in the FibResult
  // (see fib.h) so the const lookup stays free of shared mutable state.
  // Public because the bpf_fib_lookup helper reads fib() directly and must
  // report through the same counters as the slow path.
  void note_fib_lookup(const std::optional<FibResult>& hit) {
    if (!metrics_.enabled()) return;
    util::bump(fib_lookups_);
    if (hit) util::bump(fib_depth_total_, hit->depth);
  }

  // Enables conntrack consultation on forwarded/delivered packets (off by
  // default; the Kubernetes scenario turns it on, like kube-proxy does).
  // Toggling changes helper behaviour, so it counts as a device-level
  // configuration mutation for cache-coherence purposes.
  void set_conntrack_enabled(bool enabled) {
    if (conntrack_enabled_ != enabled) {
      conntrack_enabled_ = enabled;
      bump_dev_generation();
    }
  }
  bool conntrack_enabled() const { return conntrack_enabled_; }

  // --- generation counters (fast-path cache coherence) ----------------------
  // Device/link/address/sysctl configuration generation; any change that can
  // alter what a fast-path helper observes about devices bumps it. Bridges
  // share one counter (wired into each Bridge at construction); per-subsystem
  // counters live on the subsystems themselves (fib(), neigh(), netfilter(),
  // ipsets(), conntrack()).
  std::uint64_t dev_generation() const {
    return dev_gen_.load(std::memory_order_relaxed);
  }
  std::uint64_t bridge_generation() const {
    return bridge_gen_.load(std::memory_order_relaxed);
  }

 private:
  // Slow-path stages (slowpath.cpp).
  RxSummary rx_inner(int ifindex, net::Packet&& pkt, CycleTrace& trace);
  RxSummary stack_rx(NetDevice& dev, net::Packet&& pkt, CycleTrace& trace);
  RxSummary bridge_rx(Bridge& br, NetDevice& port_dev, net::Packet&& pkt,
                      CycleTrace& trace);
  RxSummary ip_rcv(NetDevice& in_dev, net::Packet&& pkt, CycleTrace& trace);
  RxSummary ip_forward(NetDevice& in_dev, net::Packet&& pkt,
                       const net::ParsedPacket& info, CycleTrace& trace);
  RxSummary local_deliver(NetDevice& in_dev, net::Packet&& pkt,
                          const net::ParsedPacket& info, CycleTrace& trace);
  RxSummary arp_rx(NetDevice& in_dev, net::Packet&& pkt, CycleTrace& trace);
  // ipvs director input path: schedule/NAT traffic addressed to a VIP.
  RxSummary ipvs_in(NetDevice& in_dev, net::Packet&& pkt,
                    const net::ParsedPacket& info,
                    const VirtualService& svc, CycleTrace& trace);
  void bridge_dev_xmit(Bridge& br, NetDevice& br_dev, net::Packet&& pkt,
                       CycleTrace& trace);
  void vxlan_xmit(NetDevice& vxlan_dev, net::Packet&& pkt, CycleTrace& trace);
  RxSummary vxlan_rx(NetDevice& in_dev, net::Packet&& pkt,
                     const net::ParsedPacket& outer, CycleTrace& trace);
  void icmp_echo_reply(NetDevice& in_dev, const net::Packet& request,
                       const net::ParsedPacket& info, CycleTrace& trace);
  // Returns kNone when the packet was handed to a device, kNeighPending when
  // it was parked awaiting ARP resolution, or a drop reason.
  Drop resolve_and_xmit(net::Packet&& pkt, net::Ipv4Addr next_hop, int oif,
                        CycleTrace& trace);
  void emit_arp_request(net::Ipv4Addr target, int oif, CycleTrace& trace);
  // Is `addr` assigned to any local device?
  NetDevice* local_addr_owner(net::Ipv4Addr addr);

  // Single bump point for every dropped/terminated packet: KernelCounters
  // stays authoritative, the registry mirror is what status_json and the
  // Prometheus exporter read (and what the equivalence fuzz diffs).
  void count_drop(Drop reason) {
    ++counters_.drops[reason];
    if (metrics_.enabled()) util::bump(drop_counters_[static_cast<int>(reason)]);
    if (auto* t = util::active_packet_trace()) {
      t->add("verdict", drop_name(reason), 0);
    }
  }

  RxSummary drop(Drop reason) {
    count_drop(reason);
    return RxSummary{false, reason};
  }

  util::Json link_attrs(const NetDevice& dev) const;
  void publish_link(const NetDevice& dev, bool deleted = false);

  void bump_dev_generation() {
    dev_gen_.fetch_add(1, std::memory_order_relaxed);
  }

  std::string hostname_;
  CostModel cost_;
  std::uint64_t now_ns_ = 1'000'000'000;  // start at t=1s
  int next_ifindex_ = 1;

  std::map<int, std::unique_ptr<NetDevice>> devs_;
  std::map<std::string, int> dev_names_;
  std::map<int, std::unique_ptr<Bridge>> bridges_;

  Fib fib_;
  NeighborTable neigh_;
  Netfilter netfilter_;
  IpSetManager ipsets_;
  Conntrack conntrack_;
  Ipvs ipvs_;
  std::map<std::string, int> sysctls_;
  bool conntrack_enabled_ = false;
  std::atomic<std::uint64_t> dev_gen_{0};
  std::atomic<std::uint64_t> bridge_gen_{0};

  nl::Bus netlink_;
  KernelCounters counters_;

  util::MetricsRegistry metrics_;
  util::StageSink stage_sink_;
  util::TraceRing* trace_ring_ = nullptr;
  // Cached registry counters, bound once in the constructor so datapath
  // emission never does a name lookup.
  util::Counter* drop_counters_[16] = {};
  util::Counter* fib_lookups_ = nullptr;
  util::Counter* fib_depth_total_ = nullptr;

  std::map<std::pair<std::uint8_t, std::uint16_t>, L4Handler> l4_handlers_;

  // Resolves an active shadow capture begun during the current top-level
  // entry: hands summary + emissions to the observer and clears the state.
  void shadow_resolve(const RxSummary& summary);

  // Guards against unbounded recursion through veth/vxlan chains.
  int rx_depth_ = 0;
  std::uint64_t last_vxlan_entropy_ = 0;

  // TX batcher hook (single slow-path writer thread only).
  TxBatcher* tx_batcher_ = nullptr;

  // Shadow capture state (single slow-path writer thread only).
  ShadowObserver* shadow_observer_ = nullptr;
  std::uint64_t active_shadow_cookie_ = 0;
  std::vector<ShadowEmission> shadow_emissions_;
};

}  // namespace linuxfp::kern
