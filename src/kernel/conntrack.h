// Connection tracking model (nf_conntrack analogue): direction-normalized
// 5-tuple table with NEW/ESTABLISHED states and idle expiry. Used by the
// Kubernetes datapath and by the ipvs-style load-balancer extension
// (paper Table I, load balancing row).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/headers.h"

namespace linuxfp::kern {

enum class CtState { kNew, kEstablished };

struct CtEntry {
  net::FlowKey original;    // direction as first seen
  CtState state = CtState::kNew;
  std::uint64_t created_ns = 0;
  std::uint64_t last_seen_ns = 0;
  std::uint64_t packets = 0;
  // Optional NAT/load-balancer rewrite applied to the original direction.
  std::optional<net::Ipv4Addr> dnat_addr;
  std::uint16_t dnat_port = 0;
};

class Conntrack {
 public:
  struct LookupResult {
    CtEntry* entry = nullptr;
    bool is_reply_direction = false;
    bool created = false;
  };

  // Finds the entry for the flow in either direction; creates a kNew entry
  // when absent. A packet seen in the reply direction of a kNew entry
  // promotes it to kEstablished (the netfilter state machine for UDP; close
  // enough for TCP RR traffic at our abstraction level).
  LookupResult lookup_or_create(const net::FlowKey& key, std::uint64_t now_ns);

  // Pure lookup, no creation (fast-path helper semantics: misses punt to the
  // slow path, which creates).
  LookupResult lookup(const net::FlowKey& key, std::uint64_t now_ns);

  // Installs a DNAT mapping on the entry (ipvs scheduling outcome) and
  // indexes the post-NAT reply tuple (backend -> client) so reply-direction
  // packets resolve to the same entry — what nf_conntrack's reply tuple
  // does.
  void set_dnat(CtEntry& entry, net::Ipv4Addr addr, std::uint16_t port);

  std::size_t expire_idle(std::uint64_t now_ns, std::uint64_t idle_ns);
  std::size_t size() const { return table_.size(); }
  std::vector<const CtEntry*> dump() const;

  // Bumped on structural changes (entry created, DNAT installed, entries
  // expired). Per-packet refreshes (last_seen, packet counts, NEW ->
  // ESTABLISHED promotion) deliberately do NOT bump: fast-path caches
  // revalidate those by replaying the lookup itself, and bumping per packet
  // would make conntrack-touching flows permanently uncacheable.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  static net::FlowKey reversed(const net::FlowKey& key);
  std::unordered_map<net::FlowKey, CtEntry> table_;
  // post-NAT reply tuple -> original tuple
  std::unordered_map<net::FlowKey, net::FlowKey> nat_index_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace linuxfp::kern
