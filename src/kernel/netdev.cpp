#include "kernel/netdev.h"

#include <algorithm>

namespace linuxfp::kern {

const char* dev_kind_name(DevKind kind) {
  switch (kind) {
    case DevKind::kPhysical: return "physical";
    case DevKind::kVeth: return "veth";
    case DevKind::kBridge: return "bridge";
    case DevKind::kVxlan: return "vxlan";
    case DevKind::kLoopback: return "loopback";
  }
  return "?";
}

bool NetDevice::add_addr(const net::IfAddr& addr) {
  if (std::find(addrs_.begin(), addrs_.end(), addr) != addrs_.end()) {
    return false;
  }
  addrs_.push_back(addr);
  return true;
}

bool NetDevice::del_addr(const net::IfAddr& addr) {
  auto it = std::find(addrs_.begin(), addrs_.end(), addr);
  if (it == addrs_.end()) return false;
  addrs_.erase(it);
  return true;
}

bool NetDevice::has_addr(net::Ipv4Addr addr) const {
  for (const auto& a : addrs_) {
    if (a.addr == addr) return true;
  }
  return false;
}

bool NetDevice::on_link(net::Ipv4Addr addr) const {
  for (const auto& a : addrs_) {
    if (a.subnet().contains(addr)) return true;
  }
  return false;
}

}  // namespace linuxfp::kern
