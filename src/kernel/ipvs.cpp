#include "kernel/ipvs.h"

namespace linuxfp::kern {

VirtualService* Ipvs::find(net::Ipv4Addr vip, std::uint16_t port,
                           std::uint8_t proto) {
  for (VirtualService& svc : services_) {
    if (svc.vip == vip && svc.port == port && svc.proto == proto) return &svc;
  }
  return nullptr;
}

util::Status Ipvs::add_service(net::Ipv4Addr vip, std::uint16_t port,
                               std::uint8_t proto, IpvsScheduler scheduler) {
  if (find(vip, port, proto)) {
    return util::Error::make("ipvs.exists", "service exists");
  }
  VirtualService svc;
  svc.vip = vip;
  svc.port = port;
  svc.proto = proto;
  svc.scheduler = scheduler;
  services_.push_back(svc);
  ++generation_;
  return {};
}

util::Status Ipvs::del_service(net::Ipv4Addr vip, std::uint16_t port,
                               std::uint8_t proto) {
  for (auto it = services_.begin(); it != services_.end(); ++it) {
    if (it->vip == vip && it->port == port && it->proto == proto) {
      services_.erase(it);
      ++generation_;
      return {};
    }
  }
  return util::Error::make("ipvs.missing", "no such service");
}

util::Status Ipvs::add_backend(net::Ipv4Addr vip, std::uint16_t port,
                               std::uint8_t proto, net::Ipv4Addr backend,
                               std::uint16_t backend_port,
                               std::uint32_t weight) {
  VirtualService* svc = find(vip, port, proto);
  if (!svc) return util::Error::make("ipvs.missing", "no such service");
  for (const RealServer& rs : svc->backends) {
    if (rs.addr == backend && rs.port == backend_port) {
      return util::Error::make("ipvs.exists", "backend exists");
    }
  }
  svc->backends.push_back({backend, backend_port, weight, 0});
  ++generation_;
  return {};
}

util::Status Ipvs::del_backend(net::Ipv4Addr vip, std::uint16_t port,
                               std::uint8_t proto, net::Ipv4Addr backend,
                               std::uint16_t backend_port) {
  VirtualService* svc = find(vip, port, proto);
  if (!svc) return util::Error::make("ipvs.missing", "no such service");
  for (auto it = svc->backends.begin(); it != svc->backends.end(); ++it) {
    if (it->addr == backend && it->port == backend_port) {
      svc->backends.erase(it);
      svc->rr_cursor = 0;
      ++generation_;
      return {};
    }
  }
  return util::Error::make("ipvs.missing", "no such backend");
}

const VirtualService* Ipvs::match(net::Ipv4Addr dst, std::uint8_t proto,
                                  std::uint16_t dport) const {
  for (const VirtualService& svc : services_) {
    if (svc.vip == dst && svc.proto == proto && svc.port == dport) {
      return &svc;
    }
  }
  return nullptr;
}

const RealServer* Ipvs::schedule(const VirtualService& svc,
                                 net::Ipv4Addr client) const {
  if (svc.backends.empty()) return nullptr;
  const RealServer* picked = nullptr;
  switch (svc.scheduler) {
    case IpvsScheduler::kRoundRobin: {
      // Weighted RR over a flattened weight wheel.
      std::uint64_t total = 0;
      for (const RealServer& rs : svc.backends) total += rs.weight;
      if (total == 0) return nullptr;
      std::uint64_t slot = svc.rr_cursor++ % total;
      for (const RealServer& rs : svc.backends) {
        if (slot < rs.weight) {
          picked = &rs;
          break;
        }
        slot -= rs.weight;
      }
      break;
    }
    case IpvsScheduler::kSourceHash: {
      std::uint64_t h = client.value() * 0x9e3779b97f4a7c15ull;
      picked = &svc.backends[(h >> 33) % svc.backends.size()];
      break;
    }
  }
  if (picked) ++picked->connections;
  return picked;
}

}  // namespace linuxfp::kern
