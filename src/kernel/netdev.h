// Network device model (struct net_device analogue) plus the hook-attachment
// interface the eBPF layer plugs into.
//
// The kernel library deliberately does not depend on the ebpf library: fast
// path programs attach through the PacketProgram interface, which the ebpf
// loader (and the Polycube baseline) implement. This mirrors the kernel/XDP
// layering in Linux.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/ipaddr.h"
#include "net/mac.h"
#include "net/packet.h"

namespace linuxfp::kern {

class Kernel;

// A program attached at a packet hook (XDP or TC). Implemented by the eBPF
// runtime; the kernel only sees verdicts and cycle charges.
class PacketProgram {
 public:
  enum class Verdict {
    kPass,      // continue up the stack (XDP_PASS / TC_ACT_OK)
    kDrop,      // XDP_DROP / TC_ACT_SHOT
    kTx,        // bounce out the ingress interface (XDP_TX)
    kRedirect,  // transmit out redirect_ifindex (XDP_REDIRECT / bpf_redirect)
    kUserspace, // delivered to an AF_XDP socket (consumed by a user app)
    kAborted,   // program error; packet continues to the stack with a warn
  };
  struct RunResult {
    Verdict verdict = Verdict::kPass;
    int redirect_ifindex = 0;
    std::uint64_t cycles = 0;
  };

  virtual ~PacketProgram() = default;
  virtual RunResult run(net::Packet& pkt, int ingress_ifindex) = 0;
  virtual std::string name() const = 0;

  // Multi-queue entry point: the engine's worker for `cpu` runs the program
  // here, concurrently with other workers. Implementations that keep per-run
  // state must shard it per CPU (the eBPF loader keeps one VM per CPU);
  // single-threaded implementations inherit this fallback and may only be
  // driven with one queue.
  virtual RunResult run_on_cpu(net::Packet& pkt, int ingress_ifindex,
                               unsigned cpu) {
    (void)cpu;
    return run(pkt, ingress_ifindex);
  }
  // Called once, single-threaded, before workers for cpus [0, n) start —
  // the implementation allocates per-CPU execution state here so run_on_cpu
  // never allocates or locks.
  virtual void prepare_cpus(unsigned n) { (void)n; }
};

enum class DevKind { kPhysical, kVeth, kBridge, kVxlan, kLoopback };

const char* dev_kind_name(DevKind kind);

// Statistics kept per device (subset of rtnl_link_stats64).
struct DevStats {
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
};

struct VethPeer {
  Kernel* kernel = nullptr;  // peer may live in another netns (Kernel)
  int ifindex = 0;
};

struct VxlanConfig {
  std::uint32_t vni = 0;
  net::Ipv4Addr local;          // underlay source address
  int underlay_ifindex = 0;     // device used to reach remote VTEPs
  // VTEP forwarding database: inner destination MAC -> remote underlay IP
  // (what `bridge fdb append ... dst <ip> dev flannel.1` installs).
  std::map<net::MacAddr, net::Ipv4Addr> vtep_fdb;
};

class NetDevice {
 public:
  NetDevice(int ifindex, std::string name, DevKind kind, net::MacAddr mac)
      : ifindex_(ifindex), name_(std::move(name)), kind_(kind), mac_(mac) {}

  int ifindex() const { return ifindex_; }
  const std::string& name() const { return name_; }
  DevKind kind() const { return kind_; }
  const net::MacAddr& mac() const { return mac_; }
  void set_mac(const net::MacAddr& mac) { mac_ = mac; }

  bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  std::uint32_t mtu() const { return mtu_; }
  void set_mtu(std::uint32_t mtu) { mtu_ = mtu; }

  // IPv4 addresses assigned to the device ("ip addr add").
  const std::vector<net::IfAddr>& addrs() const { return addrs_; }
  bool add_addr(const net::IfAddr& addr);
  bool del_addr(const net::IfAddr& addr);
  bool has_addr(net::Ipv4Addr addr) const;
  // True when `addr` falls inside one of the device's configured subnets.
  bool on_link(net::Ipv4Addr addr) const;

  // Bridge enslavement: 0 when not a bridge port.
  int master() const { return master_; }
  void set_master(int bridge_ifindex) { master_ = bridge_ifindex; }

  // Type-specific configuration.
  VethPeer& veth() { return veth_; }
  const VethPeer& veth() const { return veth_; }
  VxlanConfig& vxlan() { return vxlan_; }
  const VxlanConfig& vxlan() const { return vxlan_; }

  // Hook attachment (one program per hook, like Linux).
  PacketProgram* xdp_prog() const { return xdp_prog_; }
  PacketProgram* tc_ingress_prog() const { return tc_ingress_prog_; }
  PacketProgram* tc_egress_prog() const { return tc_egress_prog_; }
  void attach_xdp(PacketProgram* prog) { xdp_prog_ = prog; }
  void attach_tc_ingress(PacketProgram* prog) { tc_ingress_prog_ = prog; }
  void attach_tc_egress(PacketProgram* prog) { tc_egress_prog_ = prog; }

  // Physical devices transmit into the simulation through this callback.
  using PhysTxFn = std::function<void(net::Packet&&)>;
  void set_phys_tx(PhysTxFn fn) { phys_tx_ = std::move(fn); }
  const PhysTxFn& phys_tx() const { return phys_tx_; }

  DevStats& stats() { return stats_; }
  const DevStats& stats() const { return stats_; }

 private:
  int ifindex_;
  std::string name_;
  DevKind kind_;
  net::MacAddr mac_;
  bool up_ = false;
  std::uint32_t mtu_ = 1500;
  std::vector<net::IfAddr> addrs_;
  int master_ = 0;
  VethPeer veth_;
  VxlanConfig vxlan_;
  PacketProgram* xdp_prog_ = nullptr;
  PacketProgram* tc_ingress_prog_ = nullptr;
  PacketProgram* tc_egress_prog_ = nullptr;
  PhysTxFn phys_tx_;
  DevStats stats_;
};

}  // namespace linuxfp::kern
