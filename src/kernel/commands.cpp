#include "kernel/commands.h"

#include <map>

#include "util/fault.h"
#include "util/strings.h"

namespace linuxfp::kern {

namespace {

using util::Error;
using util::Status;
using Tokens = std::vector<std::string>;

Status err_usage(const std::string& what) {
  return Error::make("cmd.usage", "bad usage: " + what);
}

// Scans "key value" option pairs from position `start`.
std::map<std::string, std::string> scan_options(const Tokens& t,
                                                std::size_t start) {
  std::map<std::string, std::string> opts;
  for (std::size_t i = start; i + 1 < t.size(); i += 2) {
    opts[t[i]] = t[i + 1];
  }
  return opts;
}

Status ip_link(Kernel& k, const Tokens& t) {
  // ip link add <name> type bridge|veth peer name <peer>
  if (t.size() >= 5 && t[2] == "add") {
    const std::string& name = t[3];
    if (t.size() >= 6 && t[4] == "type" && t[5] == "bridge") {
      k.add_bridge_dev(name);
      return {};
    }
    if (t.size() >= 9 && t[4] == "type" && t[5] == "veth" && t[6] == "peer" &&
        t[7] == "name") {
      k.add_veth_pair(name, t[8]);
      return {};
    }
    return err_usage("ip link add");
  }
  // ip link del <name>
  if (t.size() == 4 && t[2] == "del") {
    return k.del_dev(t[3]);
  }
  // ip link set [dev] <name> up|down | master <bridge> | nomaster
  if (t.size() >= 4 && t[2] == "set") {
    std::size_t i = 3;
    if (t[i] == "dev" && t.size() > i + 1) ++i;
    const std::string& name = t[i++];
    if (i >= t.size()) return err_usage("ip link set");
    if (t[i] == "up") return k.set_link_up(name, true);
    if (t[i] == "down") return k.set_link_up(name, false);
    if (t[i] == "master" && i + 1 < t.size()) {
      return k.enslave(name, t[i + 1]);
    }
    if (t[i] == "nomaster") return k.release(name);
    return err_usage("ip link set");
  }
  return err_usage("ip link");
}

Status ip_addr(Kernel& k, const Tokens& t) {
  // ip addr add|del <addr>/<len> dev <dev>
  if (t.size() < 6 || (t[2] != "add" && t[2] != "del") || t[4] != "dev") {
    return err_usage("ip addr");
  }
  auto addr = net::IfAddr::parse(t[3]);
  if (!addr.ok()) return addr.error();
  if (t[2] == "add") return k.add_addr(t[5], addr.value());
  return k.del_addr(t[5], addr.value());
}

Status ip_route(Kernel& k, const Tokens& t) {
  // ip route add|replace <prefix>|default [via <gw>] dev <dev> [metric N]
  // ip route del <prefix> [metric N]
  if (t.size() >= 4 && t[2] == "del") {
    auto prefix = t[3] == "default"
                      ? util::Result<net::Ipv4Prefix>(net::Ipv4Prefix{})
                      : net::Ipv4Prefix::parse(t[3]);
    if (!prefix.ok()) return prefix.error();
    auto opts = scan_options(t, 4);
    std::optional<std::uint32_t> metric;
    if (opts.count("metric")) {
      unsigned long long m;
      if (!util::parse_u64(opts["metric"], m)) return err_usage("metric");
      metric = static_cast<std::uint32_t>(m);
    }
    return k.del_route(prefix.value(), metric);
  }
  if (t.size() >= 4 && (t[2] == "add" || t[2] == "replace")) {
    auto prefix = t[3] == "default"
                      ? util::Result<net::Ipv4Prefix>(net::Ipv4Prefix{})
                      : net::Ipv4Prefix::parse(t[3]);
    if (!prefix.ok()) return prefix.error();
    auto opts = scan_options(t, 4);
    net::Ipv4Addr via;
    if (opts.count("via")) {
      auto gw = net::Ipv4Addr::parse(opts["via"]);
      if (!gw.ok()) return gw.error();
      via = gw.value();
    }
    if (!opts.count("dev")) return err_usage("ip route: dev required");
    std::uint32_t metric = 0;
    if (opts.count("metric")) {
      unsigned long long m;
      if (!util::parse_u64(opts["metric"], m)) return err_usage("metric");
      metric = static_cast<std::uint32_t>(m);
    }
    return k.add_route(prefix.value(), via, opts["dev"], metric);
  }
  return err_usage("ip route");
}

Status ip_neigh(Kernel& k, const Tokens& t) {
  // ip neigh add <ip> lladdr <mac> dev <dev> [nud permanent]
  // ip neigh del <ip>
  if (t.size() >= 4 && t[2] == "del") {
    auto ip = net::Ipv4Addr::parse(t[3]);
    if (!ip.ok()) return ip.error();
    return k.del_neigh(ip.value());
  }
  if (t.size() >= 8 && (t[2] == "add" || t[2] == "replace")) {
    auto ip = net::Ipv4Addr::parse(t[3]);
    if (!ip.ok()) return ip.error();
    auto opts = scan_options(t, 4);
    if (!opts.count("lladdr") || !opts.count("dev")) {
      return err_usage("ip neigh add");
    }
    auto mac = net::MacAddr::parse(opts["lladdr"]);
    if (!mac.ok()) return mac.error();
    bool permanent = opts.count("nud") && opts["nud"] == "permanent";
    return k.add_neigh(ip.value(), mac.value(), opts["dev"], permanent);
  }
  return err_usage("ip neigh");
}

Status cmd_ip(Kernel& k, const Tokens& t) {
  if (t.size() < 2) return err_usage("ip");
  if (t[1] == "link") return ip_link(k, t);
  if (t[1] == "addr" || t[1] == "address") return ip_addr(k, t);
  if (t[1] == "route") return ip_route(k, t);
  if (t[1] == "neigh" || t[1] == "neighbor") return ip_neigh(k, t);
  return err_usage("ip " + t[1]);
}

Status cmd_brctl(Kernel& k, const Tokens& t) {
  if (t.size() < 3) return err_usage("brctl");
  const std::string& sub = t[1];
  if (sub == "addbr") {
    k.add_bridge_dev(t[2]);
    return {};
  }
  if (sub == "delbr") return k.del_dev(t[2]);
  if (sub == "addif" && t.size() >= 4) return k.enslave(t[3], t[2]);
  if (sub == "delif" && t.size() >= 4) return k.release(t[3]);
  if (sub == "stp" && t.size() >= 4) {
    Bridge* br = k.bridge_by_name(t[2]);
    if (!br) return Error::make("bridge.missing", "no such bridge: " + t[2]);
    br->set_stp_enabled(t[3] == "on" || t[3] == "yes");
    // Re-publish so the controller sees the STP change.
    (void)k.set_link_up(t[2], k.dev_by_name(t[2])->is_up());
    util::Json attrs = util::Json::object();
    attrs["ifname"] = t[2];
    attrs["stp"] = br->stp_enabled();
    k.netlink().publish(nl::MsgType::kNewLink, attrs);
    return {};
  }
  if (sub == "setageing" && t.size() >= 4) {
    Bridge* br = k.bridge_by_name(t[2]);
    if (!br) return Error::make("bridge.missing", "no such bridge: " + t[2]);
    unsigned long long secs;
    if (!util::parse_u64(t[3], secs)) return err_usage("brctl setageing");
    br->set_aging_time_ns(secs * 1000ull * 1000 * 1000);
    return {};
  }
  return err_usage("brctl " + sub);
}

Status cmd_bridge(Kernel& k, const Tokens& t) {
  // bridge vlan add dev <dev> vid <vid> [pvid] [untagged]
  if (t.size() >= 7 && t[1] == "vlan" && t[2] == "add" && t[3] == "dev" &&
      t[5] == "vid") {
    NetDevice* d = k.dev_by_name(t[4]);
    if (!d || d->master() == 0) {
      return Error::make("bridge.notport", "not a bridge port: " + t[4]);
    }
    Bridge* br = k.bridge(d->master());
    BridgePort* port = br->port(d->ifindex());
    unsigned long long vid;
    if (!util::parse_u64(t[6], vid) || vid > 4094) return err_usage("vid");
    auto v = static_cast<std::uint16_t>(vid);
    port->allowed_vlans.insert(v);
    bool pvid = false, untagged = false;
    for (std::size_t i = 7; i < t.size(); ++i) {
      if (t[i] == "pvid") pvid = true;
      if (t[i] == "untagged") untagged = true;
    }
    if (pvid) port->pvid = v;
    if (untagged) port->untagged_vlans.insert(v);
    br->note_config_changed();  // mutated port VLAN config via port()
    br->set_vlan_filtering(true);
    util::Json attrs = util::Json::object();
    attrs["ifname"] = t[4];
    attrs["vlan"] = static_cast<int>(v);
    k.netlink().publish(nl::MsgType::kNewLink, attrs);
    return {};
  }
  // bridge fdb add <mac> dev <dev> [vlan <vid>] [dst <ip>]
  if (t.size() >= 5 && t[1] == "fdb" &&
      (t[2] == "add" || t[2] == "append") && t[4] == "dev") {
    auto mac = net::MacAddr::parse(t[3]);
    if (!mac.ok()) return mac.error();
    NetDevice* d = k.dev_by_name(t[5]);
    if (!d) return Error::make("dev.missing", "no such device: " + t[5]);
    auto opts = scan_options(t, 6);
    if (d->kind() == DevKind::kVxlan && opts.count("dst")) {
      auto remote = net::Ipv4Addr::parse(opts["dst"]);
      if (!remote.ok()) return remote.error();
      d->vxlan().vtep_fdb[mac.value()] = remote.value();
      return {};
    }
    if (d->master() == 0) {
      return Error::make("bridge.notport", "not a bridge port: " + t[5]);
    }
    std::uint16_t vlan = 0;
    if (opts.count("vlan")) {
      unsigned long long v;
      if (!util::parse_u64(opts["vlan"], v)) return err_usage("vlan");
      vlan = static_cast<std::uint16_t>(v);
    }
    k.bridge(d->master())->fdb_add_static(mac.value(), vlan, d->ifindex());
    return {};
  }
  return err_usage("bridge");
}

Status cmd_sysctl(Kernel& k, const Tokens& t) {
  // sysctl -w key=value
  std::size_t i = 1;
  if (i < t.size() && t[i] == "-w") ++i;
  if (i >= t.size()) return err_usage("sysctl");
  auto kv = util::split(t[i], '=');
  if (kv.size() != 2) return err_usage("sysctl key=value");
  unsigned long long v;
  if (!util::parse_u64(util::trim(kv[1]), v)) return err_usage("sysctl value");
  return k.set_sysctl(util::trim(kv[0]), static_cast<int>(v));
}

util::Result<std::uint8_t> parse_proto(const std::string& p) {
  if (p == "tcp") return std::uint8_t{net::kIpProtoTcp};
  if (p == "udp") return std::uint8_t{net::kIpProtoUdp};
  if (p == "icmp") return std::uint8_t{net::kIpProtoIcmp};
  unsigned long long v;
  if (util::parse_u64(p, v) && v < 256) return static_cast<std::uint8_t>(v);
  return Error::make("ipt.proto", "unknown protocol: " + p);
}

Status cmd_iptables(Kernel& k, const Tokens& t) {
  // Supported forms:
  //  iptables -A|-I <chain> [match...] -j <target>
  //  iptables -D <chain> <rulenum>
  //  iptables -F [<chain>] | -P <chain> <policy> | -N <chain> | -X <chain>
  std::size_t i = 1;
  if (i >= t.size()) return err_usage("iptables");
  const std::string op = t[i++];

  if (op == "-F") {
    if (i < t.size()) return k.ipt_flush(t[i]);
    for (const char* c : {"INPUT", "FORWARD", "OUTPUT"}) {
      auto st = k.ipt_flush(c);
      if (!st.ok()) return st;
    }
    return {};
  }
  if (op == "-N") {
    if (i >= t.size()) return err_usage("iptables -N");
    return k.ipt_new_chain(t[i]);
  }
  if (op == "-X") {
    if (i >= t.size()) return err_usage("iptables -X");
    return k.netfilter().delete_chain(t[i]);
  }
  if (op == "-P") {
    if (i + 1 >= t.size()) return err_usage("iptables -P");
    NfVerdict v = t[i + 1] == "DROP" ? NfVerdict::kDrop : NfVerdict::kAccept;
    return k.ipt_set_policy(t[i], v);
  }
  if (op == "-D") {
    if (i + 1 >= t.size()) return err_usage("iptables -D");
    unsigned long long num;
    if (!util::parse_u64(t[i + 1], num) || num == 0) {
      return err_usage("iptables -D <chain> <rulenum>");
    }
    return k.ipt_delete(t[i], static_cast<std::size_t>(num - 1));
  }
  if (op != "-A" && op != "-I") return err_usage("iptables " + op);

  if (i >= t.size()) return err_usage("iptables -A <chain>");
  const std::string chain = t[i++];
  std::size_t insert_index = 0;
  if (op == "-I" && i < t.size()) {
    unsigned long long num;
    if (util::parse_u64(t[i], num) && num > 0) {
      insert_index = static_cast<std::size_t>(num - 1);
      ++i;
    }
  }

  Rule rule;
  bool have_target = false;
  while (i < t.size()) {
    const std::string& flag = t[i];
    bool negated = false;
    if (flag == "!") {
      negated = true;
      ++i;
      if (i >= t.size()) return err_usage("iptables !");
    }
    const std::string& f = t[i];
    auto need_arg = [&](const char* what) -> util::Result<std::string> {
      if (i + 1 >= t.size()) {
        return Error::make("cmd.usage", std::string("missing arg for ") + what);
      }
      return t[i + 1];
    };
    if (f == "-s" || f == "--source" || f == "-d" || f == "--destination") {
      auto arg = need_arg(f.c_str());
      if (!arg.ok()) return arg.error();
      auto prefix = net::Ipv4Prefix::parse(arg.value());
      if (!prefix.ok()) return prefix.error();
      if (f == "-s" || f == "--source") {
        rule.match.src = prefix.value();
        rule.match.src_negated = negated;
      } else {
        rule.match.dst = prefix.value();
        rule.match.dst_negated = negated;
      }
      i += 2;
    } else if (f == "-p" || f == "--protocol") {
      auto arg = need_arg("-p");
      if (!arg.ok()) return arg.error();
      auto proto = parse_proto(arg.value());
      if (!proto.ok()) return proto.error();
      rule.match.proto = proto.value();
      i += 2;
    } else if (f == "--dport" || f == "--sport") {
      auto arg = need_arg(f.c_str());
      if (!arg.ok()) return arg.error();
      unsigned long long port;
      if (!util::parse_u64(arg.value(), port) || port > 65535) {
        return err_usage("port");
      }
      if (f == "--dport") rule.match.dport = static_cast<std::uint16_t>(port);
      else rule.match.sport = static_cast<std::uint16_t>(port);
      i += 2;
    } else if (f == "-i" || f == "--in-interface") {
      auto arg = need_arg("-i");
      if (!arg.ok()) return arg.error();
      rule.match.in_if = arg.value();
      i += 2;
    } else if (f == "-o" || f == "--out-interface") {
      auto arg = need_arg("-o");
      if (!arg.ok()) return arg.error();
      rule.match.out_if = arg.value();
      i += 2;
    } else if (f == "-m") {
      auto arg = need_arg("-m");
      if (!arg.ok()) return arg.error();
      if (arg.value() != "set" && arg.value() != "state" &&
          arg.value() != "conntrack") {
        return Error::make("ipt.match", "unsupported match: " + arg.value());
      }
      i += 2;
    } else if (f == "--state" || f == "--ctstate") {
      auto arg = need_arg(f.c_str());
      if (!arg.ok()) return arg.error();
      // Comma lists: RELATED folds into ESTABLISHED (the common kube idiom
      // "ESTABLISHED,RELATED"); a list containing both NEW and ESTABLISHED
      // matches everything tracked, which we reduce to no state constraint.
      bool want_new = false, want_est = false;
      for (const std::string& state : util::split(arg.value(), ',')) {
        if (state == "NEW") want_new = true;
        else if (state == "ESTABLISHED" || state == "RELATED") want_est = true;
        else return Error::make("ipt.state", "unsupported state: " + state);
      }
      if (want_new && !want_est) rule.match.ct_state = "NEW";
      else if (want_est && !want_new) rule.match.ct_state = "ESTABLISHED";
      i += 2;
    } else if (f == "--match-set") {
      if (i + 2 >= t.size()) return err_usage("--match-set <set> src|dst");
      rule.match.match_set = t[i + 1];
      rule.match.set_match_src = t[i + 2] == "src";
      i += 3;
    } else if (f == "-j" || f == "--jump") {
      auto arg = need_arg("-j");
      if (!arg.ok()) return arg.error();
      const std::string& target = arg.value();
      if (target == "ACCEPT") rule.target = RuleTarget::kAccept;
      else if (target == "DROP") rule.target = RuleTarget::kDrop;
      else if (target == "RETURN") rule.target = RuleTarget::kReturn;
      else {
        rule.target = RuleTarget::kJump;
        rule.jump_chain = target;
      }
      have_target = true;
      i += 2;
    } else {
      return Error::make("ipt.flag", "unsupported flag: " + f);
    }
  }
  if (!have_target) return err_usage("iptables: -j required");
  if (op == "-I") return k.ipt_insert(chain, insert_index, std::move(rule));
  return k.ipt_append(chain, std::move(rule));
}

Status cmd_ipset(Kernel& k, const Tokens& t) {
  if (t.size() < 3) return err_usage("ipset");
  const std::string& sub = t[1];
  if (sub == "create") {
    if (t.size() < 4) {
      return err_usage("ipset create <name> <type> [maxelem N]");
    }
    IpSetType type;
    if (t[3] == "hash:ip") type = IpSetType::kHashIp;
    else if (t[3] == "hash:net") type = IpSetType::kHashNet;
    else return Error::make("ipset.type", "unsupported type: " + t[3]);
    std::size_t maxelem = kIpSetDefaultMaxElem;
    if (t.size() >= 6 && t[4] == "maxelem") {
      unsigned long long n;
      if (!util::parse_u64(t[5], n) || n == 0) {
        return err_usage("ipset create: maxelem expects a positive integer");
      }
      maxelem = static_cast<std::size_t>(n);
    } else if (t.size() > 4) {
      return err_usage("ipset create <name> <type> [maxelem N]");
    }
    return k.ipset_create(t[2], type, maxelem);
  }
  if (sub == "destroy") return k.ipset_destroy(t[2]);
  if (sub == "add" || sub == "del") {
    if (t.size() < 4) return err_usage("ipset add <name> <member>");
    auto member = net::Ipv4Prefix::parse(t[3]);
    if (!member.ok()) return member.error();
    if (sub == "add") return k.ipset_add(t[2], member.value());
    return k.ipset_del(t[2], member.value());
  }
  return err_usage("ipset " + sub);
}

// ipvsadm front-end:
//   ipvsadm -A -t <vip>:<port> [-s rr|sh]      add virtual service (TCP)
//   ipvsadm -A -u <vip>:<port> [-s rr|sh]      add virtual service (UDP)
//   ipvsadm -D -t <vip>:<port>                 delete service
//   ipvsadm -a -t <vip>:<port> -r <ip>:<port> [-w N]   add real server
Status cmd_ipvsadm(Kernel& k, const Tokens& t) {
  auto parse_endpoint = [](const std::string& text)
      -> util::Result<std::pair<net::Ipv4Addr, std::uint16_t>> {
    auto parts = util::split(text, ':');
    if (parts.size() != 2) {
      return Error::make("ipvs.endpoint", "expected ip:port, got " + text);
    }
    auto ip = net::Ipv4Addr::parse(parts[0]);
    if (!ip.ok()) return ip.error();
    unsigned long long port;
    if (!util::parse_u64(parts[1], port) || port > 65535) {
      return Error::make("ipvs.endpoint", "bad port in " + text);
    }
    return std::make_pair(ip.value(), static_cast<std::uint16_t>(port));
  };

  if (t.size() < 4) return err_usage("ipvsadm");
  const std::string& op = t[1];
  std::uint8_t proto;
  if (t[2] == "-t") proto = net::kIpProtoTcp;
  else if (t[2] == "-u") proto = net::kIpProtoUdp;
  else return err_usage("ipvsadm: -t or -u required");
  auto vip = parse_endpoint(t[3]);
  if (!vip.ok()) return vip.error();

  auto opts = scan_options(t, 4);
  if (op == "-A") {
    IpvsScheduler sched = IpvsScheduler::kRoundRobin;
    if (opts.count("-s")) {
      if (opts["-s"] == "sh") sched = IpvsScheduler::kSourceHash;
      else if (opts["-s"] != "rr") {
        return Error::make("ipvs.sched", "unsupported scheduler: " + opts["-s"]);
      }
    }
    return k.ipvs_add_service(vip->first, vip->second, proto, sched);
  }
  if (op == "-D") {
    return k.ipvs_del_service(vip->first, vip->second, proto);
  }
  if (op == "-a") {
    if (!opts.count("-r")) return err_usage("ipvsadm -a: -r required");
    auto backend = parse_endpoint(opts["-r"]);
    if (!backend.ok()) return backend.error();
    std::uint32_t weight = 1;
    if (opts.count("-w")) {
      unsigned long long w;
      if (!util::parse_u64(opts["-w"], w)) return err_usage("ipvsadm -w");
      weight = static_cast<std::uint32_t>(w);
    }
    return k.ipvs_add_backend(vip->first, vip->second, proto, backend->first,
                              backend->second, weight);
  }
  return err_usage("ipvsadm " + op);
}

}  // namespace

Status run_command(Kernel& kernel, const std::string& command_line) {
  // Injection point for the configuration plane: a fault here models the
  // admin tool failing (ENOMEM, netlink EBUSY) before touching kernel state.
  if (auto st = util::FaultInjector::global().check(util::kFaultKernelCommand);
      !st.ok()) {
    return st;
  }
  Tokens t = util::split_ws(command_line);
  if (t.empty()) return err_usage("empty command");
  if (t[0] == "ip") return cmd_ip(kernel, t);
  if (t[0] == "brctl") return cmd_brctl(kernel, t);
  if (t[0] == "bridge") return cmd_bridge(kernel, t);
  if (t[0] == "sysctl") return cmd_sysctl(kernel, t);
  if (t[0] == "iptables") return cmd_iptables(kernel, t);
  if (t[0] == "ipset") return cmd_ipset(kernel, t);
  if (t[0] == "ipvsadm") return cmd_ipvsadm(kernel, t);
  return Error::make("cmd.unknown", "unknown command: " + t[0]);
}

}  // namespace linuxfp::kern
