// IPv4 address and CIDR prefix value types.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/result.h"

namespace linuxfp::net {

class Ipv4Addr {
 public:
  Ipv4Addr() = default;
  // Host byte order value (0x0A000001 == 10.0.0.1).
  explicit Ipv4Addr(std::uint32_t host_order) : value_(host_order) {}

  static Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                              std::uint8_t d) {
    return Ipv4Addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | d);
  }
  static util::Result<Ipv4Addr> parse(const std::string& text);

  std::uint32_t value() const { return value_; }
  bool is_zero() const { return value_ == 0; }
  bool is_broadcast() const { return value_ == 0xffffffffu; }
  bool is_multicast() const { return (value_ & 0xf0000000u) == 0xe0000000u; }
  bool is_loopback() const { return (value_ >> 24) == 127; }

  std::string to_string() const;

  bool operator==(const Ipv4Addr& o) const { return value_ == o.value_; }
  bool operator!=(const Ipv4Addr& o) const { return value_ != o.value_; }
  bool operator<(const Ipv4Addr& o) const { return value_ < o.value_; }

 private:
  std::uint32_t value_ = 0;
};

// A CIDR prefix: address + prefix length, canonicalized (host bits zeroed).
class Ipv4Prefix {
 public:
  Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Addr addr, std::uint8_t prefix_len);

  // Parses "a.b.c.d/len" or a bare address (treated as /32).
  static util::Result<Ipv4Prefix> parse(const std::string& text);

  Ipv4Addr network() const { return network_; }
  std::uint8_t prefix_len() const { return prefix_len_; }
  std::uint32_t mask() const;

  bool contains(Ipv4Addr addr) const;
  bool contains(const Ipv4Prefix& other) const;

  // The k-th host address inside the prefix (k=1 is .1 etc.).
  Ipv4Addr host(std::uint32_t k) const;

  std::string to_string() const;

  bool operator==(const Ipv4Prefix& o) const {
    return network_ == o.network_ && prefix_len_ == o.prefix_len_;
  }
  bool operator<(const Ipv4Prefix& o) const {
    if (network_ != o.network_) return network_ < o.network_;
    return prefix_len_ < o.prefix_len_;
  }

 private:
  Ipv4Addr network_;
  std::uint8_t prefix_len_ = 0;
};

// An interface address: full host address plus prefix length (what
// `ip addr add 10.0.0.1/24` configures). Unlike Ipv4Prefix the host bits are
// preserved.
struct IfAddr {
  Ipv4Addr addr;
  std::uint8_t prefix_len = 32;

  static util::Result<IfAddr> parse(const std::string& text);

  Ipv4Prefix subnet() const { return Ipv4Prefix(addr, prefix_len); }
  std::string to_string() const {
    return addr.to_string() + "/" + std::to_string(prefix_len);
  }

  bool operator==(const IfAddr&) const = default;
};

}  // namespace linuxfp::net

template <>
struct std::hash<linuxfp::net::Ipv4Addr> {
  std::size_t operator()(const linuxfp::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
