// 48-bit Ethernet MAC address value type.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "util/result.h"

namespace linuxfp::net {

class MacAddr {
 public:
  MacAddr() = default;
  explicit MacAddr(const std::array<std::uint8_t, 6>& bytes) : bytes_(bytes) {}

  // Builds a locally-administered unicast MAC from a 32-bit id (used by the
  // simulator to hand out unique addresses).
  static MacAddr from_id(std::uint32_t id);
  static util::Result<MacAddr> parse(const std::string& text);
  static MacAddr broadcast();
  static MacAddr zero() { return MacAddr{}; }

  bool is_broadcast() const;
  bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }
  bool is_zero() const;

  const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  std::uint64_t as_u64() const;

  std::string to_string() const;

  bool operator==(const MacAddr& other) const { return bytes_ == other.bytes_; }
  bool operator!=(const MacAddr& other) const { return !(*this == other); }
  bool operator<(const MacAddr& other) const { return bytes_ < other.bytes_; }

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace linuxfp::net

template <>
struct std::hash<linuxfp::net::MacAddr> {
  std::size_t operator()(const linuxfp::net::MacAddr& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.as_u64());
  }
};
