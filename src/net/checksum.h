// Internet checksum (RFC 1071) helpers, including incremental update used by
// fast-path TTL decrement (mirrors the kernel's ip_decrease_ttl).
#pragma once

#include <cstddef>
#include <cstdint>

namespace linuxfp::net {

// One's-complement sum over a byte range, folded to 16 bits (not inverted).
std::uint16_t checksum_fold(const std::uint8_t* data, std::size_t len,
                            std::uint32_t initial = 0);

// Full internet checksum (inverted fold) over the range.
std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len);

// Incrementally updates an existing checksum when a 16-bit field changes
// (RFC 1624 eqn. 3).
std::uint16_t checksum_update16(std::uint16_t old_csum, std::uint16_t old_val,
                                std::uint16_t new_val);

}  // namespace linuxfp::net
