#include "net/headers.h"

#include <cstring>

#include "net/checksum.h"
#include "util/logging.h"

namespace linuxfp::net {

std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(std::uint16_t{p[0]} << 8 | p[1]);
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} << 24 | std::uint32_t{p[1]} << 16 |
         std::uint32_t{p[2]} << 8 | p[3];
}

void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

MacAddr EthernetView::dst() const {
  std::array<std::uint8_t, 6> b;
  std::memcpy(b.data(), base_, 6);
  return MacAddr(b);
}

MacAddr EthernetView::src() const {
  std::array<std::uint8_t, 6> b;
  std::memcpy(b.data(), base_ + 6, 6);
  return MacAddr(b);
}

void EthernetView::set_dst(const MacAddr& mac) {
  std::memcpy(base_, mac.bytes().data(), 6);
}

void EthernetView::set_src(const MacAddr& mac) {
  std::memcpy(base_ + 6, mac.bytes().data(), 6);
}

void Ipv4View::update_checksum() {
  set_checksum(0);
  set_checksum(internet_checksum(base_, header_len()));
}

bool Ipv4View::checksum_valid() const {
  return checksum_fold(base_, header_len()) == 0xffff;
}

void Ipv4View::decrement_ttl() {
  // The TTL shares a 16-bit checksum word with the protocol field.
  std::uint16_t old_word = load_be16(base_ + 8);
  set_ttl(static_cast<std::uint8_t>(ttl() - 1));
  std::uint16_t new_word = load_be16(base_ + 8);
  set_checksum(checksum_update16(checksum(), old_word, new_word));
}

void IcmpView::update_checksum(std::size_t icmp_len) {
  store_be16(base_ + 2, 0);
  store_be16(base_ + 2, internet_checksum(base_, icmp_len));
}

ArpFields ArpView::read() const {
  ArpFields f;
  f.opcode = load_be16(base_ + 6);
  std::array<std::uint8_t, 6> mac;
  std::memcpy(mac.data(), base_ + 8, 6);
  f.sender_mac = MacAddr(mac);
  f.sender_ip = Ipv4Addr(load_be32(base_ + 14));
  std::memcpy(mac.data(), base_ + 18, 6);
  f.target_mac = MacAddr(mac);
  f.target_ip = Ipv4Addr(load_be32(base_ + 24));
  return f;
}

void ArpView::write(const ArpFields& fields) {
  store_be16(base_, 1);       // HTYPE: Ethernet
  store_be16(base_ + 2, kEtherTypeIpv4);
  base_[4] = 6;               // HLEN
  base_[5] = 4;               // PLEN
  store_be16(base_ + 6, fields.opcode);
  std::memcpy(base_ + 8, fields.sender_mac.bytes().data(), 6);
  store_be32(base_ + 14, fields.sender_ip.value());
  std::memcpy(base_ + 18, fields.target_mac.bytes().data(), 6);
  store_be32(base_ + 24, fields.target_ip.value());
}

std::optional<ParsedPacket> parse_packet(const Packet& pkt) {
  ParsedPacket out;
  const std::uint8_t* base = pkt.data();
  std::size_t len = pkt.size();
  if (len < kEthHdrLen) return std::nullopt;

  EthernetView eth(const_cast<std::uint8_t*>(base));
  out.eth_dst = eth.dst();
  out.eth_src = eth.src();
  out.ethertype = eth.ethertype();
  std::size_t offset = kEthHdrLen;

  if (out.ethertype == kEtherTypeVlan) {
    if (len < offset + kVlanHdrLen) return std::nullopt;
    VlanView vlan(const_cast<std::uint8_t*>(base + 12 + 2));
    out.has_vlan = true;
    out.vlan_id = vlan.vid();
    out.ethertype = vlan.inner_ethertype();
    offset += kVlanHdrLen;
  }
  out.l3_offset = offset;

  if (out.ethertype == kEtherTypeIpv4) {
    if (len < offset + kIpv4HdrLen) return std::nullopt;
    Ipv4View ip(const_cast<std::uint8_t*>(base + offset));
    if (ip.version() != 4 || ip.header_len() < kIpv4HdrLen) return std::nullopt;
    if (len < offset + ip.header_len()) return std::nullopt;
    out.has_ipv4 = true;
    out.ip_src = ip.src();
    out.ip_dst = ip.dst();
    out.ip_proto = ip.protocol();
    out.ttl = ip.ttl();
    out.ip_fragment = ip.is_fragment();
    out.l4_offset = offset + ip.header_len();

    if (!out.ip_fragment &&
        (out.ip_proto == kIpProtoUdp || out.ip_proto == kIpProtoTcp)) {
      std::size_t need = out.ip_proto == kIpProtoUdp ? kUdpHdrLen : kTcpHdrLen;
      if (len >= out.l4_offset + need) {
        out.has_ports = true;
        out.src_port = load_be16(base + out.l4_offset);
        out.dst_port = load_be16(base + out.l4_offset + 2);
      }
    }
  }
  return out;
}

namespace {

// Writes eth + ipv4 headers; returns the L4 offset.
std::size_t write_eth_ipv4(Packet& pkt, const MacAddr& eth_src,
                           const MacAddr& eth_dst, Ipv4Addr src, Ipv4Addr dst,
                           std::uint8_t proto, std::uint8_t ttl,
                           std::size_t ip_total_len) {
  EthernetView eth(pkt.data());
  eth.set_dst(eth_dst);
  eth.set_src(eth_src);
  eth.set_ethertype(kEtherTypeIpv4);

  std::uint8_t* l3 = pkt.data() + kEthHdrLen;
  l3[0] = 0x45;  // version 4, IHL 5
  l3[1] = 0;     // DSCP
  Ipv4View ip(l3);
  ip.set_total_len(static_cast<std::uint16_t>(ip_total_len));
  ip.set_id(0);
  ip.set_frag_field(0x4000);  // DF
  ip.set_ttl(ttl);
  ip.set_protocol(proto);
  ip.set_src(src);
  ip.set_dst(dst);
  ip.update_checksum();
  return kEthHdrLen + kIpv4HdrLen;
}

}  // namespace

Packet build_udp_packet(const MacAddr& eth_src, const MacAddr& eth_dst,
                        const FlowKey& flow, std::size_t frame_len,
                        std::uint8_t ttl) {
  std::size_t min_len = kEthHdrLen + kIpv4HdrLen + kUdpHdrLen;
  if (frame_len < std::max<std::size_t>(min_len, 60)) {
    frame_len = std::max<std::size_t>(min_len, 60);
  }
  Packet pkt(frame_len);
  std::size_t l4 = write_eth_ipv4(pkt, eth_src, eth_dst, flow.src_ip,
                                  flow.dst_ip, kIpProtoUdp, ttl,
                                  frame_len - kEthHdrLen);
  UdpView udp(pkt.data() + l4);
  udp.set_src_port(flow.src_port);
  udp.set_dst_port(flow.dst_port);
  udp.set_length(static_cast<std::uint16_t>(frame_len - l4));
  udp.set_checksum(0);  // optional for IPv4
  return pkt;
}

Packet build_tcp_packet(const MacAddr& eth_src, const MacAddr& eth_dst,
                        const FlowKey& flow, std::uint8_t flags,
                        std::size_t frame_len, std::uint8_t ttl) {
  std::size_t min_len = kEthHdrLen + kIpv4HdrLen + kTcpHdrLen;
  if (frame_len < std::max<std::size_t>(min_len, 60)) {
    frame_len = std::max<std::size_t>(min_len, 60);
  }
  Packet pkt(frame_len);
  std::size_t l4 = write_eth_ipv4(pkt, eth_src, eth_dst, flow.src_ip,
                                  flow.dst_ip, kIpProtoTcp, ttl,
                                  frame_len - kEthHdrLen);
  TcpView tcp(pkt.data() + l4);
  tcp.set_src_port(flow.src_port);
  tcp.set_dst_port(flow.dst_port);
  tcp.set_seq(1);
  tcp.set_ack(0);
  tcp.set_data_offset_words(5);
  tcp.set_flags(flags);
  return pkt;
}

Packet build_arp_request(const MacAddr& sender_mac, Ipv4Addr sender_ip,
                         Ipv4Addr target_ip) {
  Packet pkt(60);
  EthernetView eth(pkt.data());
  eth.set_dst(MacAddr::broadcast());
  eth.set_src(sender_mac);
  eth.set_ethertype(kEtherTypeArp);
  ArpView arp(pkt.data() + kEthHdrLen);
  arp.write({.opcode = 1,
             .sender_mac = sender_mac,
             .sender_ip = sender_ip,
             .target_mac = MacAddr::zero(),
             .target_ip = target_ip});
  return pkt;
}

Packet build_arp_reply(const MacAddr& sender_mac, Ipv4Addr sender_ip,
                       const MacAddr& target_mac, Ipv4Addr target_ip) {
  Packet pkt(60);
  EthernetView eth(pkt.data());
  eth.set_dst(target_mac);
  eth.set_src(sender_mac);
  eth.set_ethertype(kEtherTypeArp);
  ArpView arp(pkt.data() + kEthHdrLen);
  arp.write({.opcode = 2,
             .sender_mac = sender_mac,
             .sender_ip = sender_ip,
             .target_mac = target_mac,
             .target_ip = target_ip});
  return pkt;
}

Packet build_icmp_echo(const MacAddr& eth_src, const MacAddr& eth_dst,
                       Ipv4Addr src_ip, Ipv4Addr dst_ip, bool is_reply,
                       std::uint16_t ident, std::uint16_t seq) {
  std::size_t frame_len = kEthHdrLen + kIpv4HdrLen + kIcmpHdrLen + 32;
  Packet pkt(frame_len);
  std::size_t l4 = write_eth_ipv4(pkt, eth_src, eth_dst, src_ip, dst_ip,
                                  kIpProtoIcmp, 64, frame_len - kEthHdrLen);
  IcmpView icmp(pkt.data() + l4);
  icmp.set_type(is_reply ? 0 : 8);
  icmp.set_code(0);
  icmp.set_ident(ident);
  icmp.set_sequence(seq);
  icmp.update_checksum(kIcmpHdrLen + 32);
  return pkt;
}

void insert_vlan_tag(Packet& pkt, std::uint16_t vid) {
  LFP_CHECK(pkt.size() >= kEthHdrLen);
  std::uint16_t outer_type = load_be16(pkt.data() + 12);
  std::uint8_t* p = pkt.push_front(kVlanHdrLen);
  // Move dst+src MAC to the new front.
  std::memmove(p, p + kVlanHdrLen, 12);
  store_be16(p + 12, kEtherTypeVlan);
  VlanView vlan(p + 14);
  vlan.set_tci(vid & 0x0fff);
  vlan.set_inner_ethertype(outer_type);
}

void strip_vlan_tag(Packet& pkt) {
  LFP_CHECK(pkt.size() >= kEthHdrLen + kVlanHdrLen);
  LFP_CHECK(load_be16(pkt.data() + 12) == kEtherTypeVlan);
  std::uint16_t inner = load_be16(pkt.data() + 16);
  std::memmove(pkt.data() + kVlanHdrLen, pkt.data(), 12);
  pkt.pull_front(kVlanHdrLen);
  store_be16(pkt.data() + 12, inner);
}

std::vector<Packet> gso_segment(const Packet& pkt) {
  std::vector<Packet> out;
  const std::size_t nsegs = pkt.gro_segs.size();
  if (nsegs < 2) {
    out.push_back(pkt);
    out.back().gro_segs.clear();
    return out;
  }
  // GroEngine only coalesces standard Eth+IPv4(ihl=5)+TCP(doff=5)/UDP frames
  // (engine/gro.cpp); the payload of segment i sits at hdr_len + sum of the
  // preceding payload lengths.
  const std::uint8_t* base = pkt.data();
  Ipv4View super_ip(const_cast<std::uint8_t*>(base) + kEthHdrLen);
  const bool tcp = super_ip.protocol() == kIpProtoTcp;
  const std::size_t l4_len = tcp ? kTcpHdrLen : kUdpHdrLen;
  const std::size_t hdr_len = kEthHdrLen + kIpv4HdrLen + l4_len;
  LFP_CHECK_MSG(pkt.size() >= hdr_len, "gso_segment: super-packet too short");
  std::uint32_t base_seq = 0;
  if (tcp) {
    TcpView super_tcp(const_cast<std::uint8_t*>(base) + kEthHdrLen +
                      kIpv4HdrLen);
    base_seq = super_tcp.seq();
  }

  out.reserve(nsegs);
  std::size_t payload_off = hdr_len;
  std::uint32_t cum_payload = 0;
  for (const GroSeg& meta : pkt.gro_segs) {
    Packet seg(hdr_len + meta.payload_len);
    // Receive metadata rides along unchanged (the split happens at TX; the
    // segments logically arrived on the super-packet's ingress path).
    seg.ingress_ifindex = pkt.ingress_ifindex;
    seg.rx_queue = pkt.rx_queue;
    seg.vlan_tci = pkt.vlan_tci;
    seg.rss_hash = pkt.rss_hash;
    seg.rss_hash_valid = pkt.rss_hash_valid;
    std::memcpy(seg.data(), base, hdr_len);
    std::memcpy(seg.data() + hdr_len, base + payload_off, meta.payload_len);
    Ipv4View ip(seg.data() + kEthHdrLen);
    ip.set_total_len(
        static_cast<std::uint16_t>(kIpv4HdrLen + l4_len + meta.payload_len));
    ip.set_id(meta.ip_id);
    if (tcp) {
      TcpView tcpv(seg.data() + kEthHdrLen + kIpv4HdrLen);
      tcpv.set_seq(base_seq + cum_payload);
      store_be16(seg.data() + kEthHdrLen + kIpv4HdrLen + 16, meta.l4_csum);
    } else {
      UdpView udp(seg.data() + kEthHdrLen + kIpv4HdrLen);
      udp.set_length(static_cast<std::uint16_t>(kUdpHdrLen + meta.payload_len));
      udp.set_checksum(meta.l4_csum);
    }
    ip.update_checksum();
    payload_off += meta.payload_len;
    cum_payload += meta.payload_len;
    out.push_back(std::move(seg));
  }
  return out;
}

void vxlan_encap(Packet& pkt, std::uint32_t vni, const MacAddr& outer_src_mac,
                 const MacAddr& outer_dst_mac, Ipv4Addr outer_src,
                 Ipv4Addr outer_dst, std::uint16_t src_port_entropy) {
  std::size_t inner_len = pkt.size();
  std::size_t overhead = kEthHdrLen + kIpv4HdrLen + kUdpHdrLen + kVxlanHdrLen;
  std::uint8_t* p = pkt.push_front(overhead);

  EthernetView eth(p);
  eth.set_dst(outer_dst_mac);
  eth.set_src(outer_src_mac);
  eth.set_ethertype(kEtherTypeIpv4);

  std::uint8_t* l3 = p + kEthHdrLen;
  l3[0] = 0x45;
  l3[1] = 0;
  Ipv4View ip(l3);
  ip.set_total_len(static_cast<std::uint16_t>(
      kIpv4HdrLen + kUdpHdrLen + kVxlanHdrLen + inner_len));
  ip.set_id(0);
  ip.set_frag_field(0x4000);
  ip.set_ttl(64);
  ip.set_protocol(kIpProtoUdp);
  ip.set_src(outer_src);
  ip.set_dst(outer_dst);
  ip.update_checksum();

  UdpView udp(l3 + kIpv4HdrLen);
  udp.set_src_port(static_cast<std::uint16_t>(0xc000 | (src_port_entropy & 0x3fff)));
  udp.set_dst_port(kVxlanPort);
  udp.set_length(
      static_cast<std::uint16_t>(kUdpHdrLen + kVxlanHdrLen + inner_len));
  udp.set_checksum(0);

  VxlanView vxlan(l3 + kIpv4HdrLen + kUdpHdrLen);
  vxlan.set_vni(vni);
}

void vxlan_decap(Packet& pkt) {
  std::size_t overhead = kEthHdrLen + kIpv4HdrLen + kUdpHdrLen + kVxlanHdrLen;
  LFP_CHECK(pkt.size() > overhead);
  pkt.pull_front(overhead);
}

}  // namespace linuxfp::net
