// Packet buffer: a contiguous byte buffer with headroom so encapsulation
// (VXLAN) can push headers without copying, plus receive metadata. This is
// the object that flows through NICs, the eBPF VM (as packet memory) and the
// kernel slow path (wrapped in an SkBuff).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.h"

namespace linuxfp::net {

// Per-segment metadata recorded when GRO coalesces a segment into a
// super-packet (engine/gro.h). Everything the TX-side resegmentation needs
// to reproduce the original wire bytes exactly: the payload length, the
// original IP identification, and the original L4 checksum bytes (the slow
// path never touches L4 checksums, so restoring the stored value is
// byte-identical to having forwarded the segment alone).
struct GroSeg {
  std::uint16_t payload_len = 0;
  std::uint16_t ip_id = 0;
  std::uint16_t l4_csum = 0;
};

class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 128;

  Packet() : Packet(0) {}
  explicit Packet(std::size_t data_len, std::size_t headroom = kDefaultHeadroom)
      : buf_(headroom + data_len, 0), offset_(headroom) {}

  static Packet from_bytes(const std::uint8_t* data, std::size_t len,
                           std::size_t headroom = kDefaultHeadroom) {
    Packet p(len, headroom);
    std::memcpy(p.data(), data, len);
    return p;
  }

  std::uint8_t* data() { return buf_.data() + offset_; }
  const std::uint8_t* data() const { return buf_.data() + offset_; }
  std::size_t size() const { return buf_.size() - offset_; }
  std::size_t headroom() const { return offset_; }

  // Grows the packet at the front (encap). Returns pointer to the new bytes.
  std::uint8_t* push_front(std::size_t n) {
    LFP_CHECK_MSG(offset_ >= n, "packet headroom exhausted");
    offset_ -= n;
    return data();
  }

  // Shrinks the packet at the front (decap).
  void pull_front(std::size_t n) {
    LFP_CHECK_MSG(n <= size(), "pull beyond packet end");
    offset_ += n;
  }

  // Grows or truncates the tail.
  void resize_data(std::size_t new_len) { buf_.resize(offset_ + new_len); }

  // Wire size including Ethernet framing overhead (preamble+SFD+IFG+FCS =
  // 24 bytes total; payload below 60 B is padded to the 64 B minimum frame).
  std::size_t wire_size() const {
    std::size_t frame = size() < 60 ? 64 : size() + 4;  // +FCS
    return frame + 20;                                  // preamble + IFG
  }

  // Receive metadata (xdp_md analogue).
  std::uint32_t ingress_ifindex = 0;
  std::uint32_t rx_queue = 0;
  // VLAN metadata when offloaded by the (simulated) NIC; 0 = untagged.
  std::uint16_t vlan_tci = 0;
  // RSS Toeplitz flow hash computed once by the (simulated) NIC at receive
  // (skb->hash analogue). Consumers — queue steering, the microflow verdict
  // cache — reuse it instead of rehashing; valid only when rss_hash_valid.
  std::uint32_t rss_hash = 0;
  bool rss_hash_valid = false;
  // Equivalence-guard shadow handle (core/guard.h): non-zero marks a packet
  // whose fast-path verdict was recorded for comparison and that is now
  // traversing the slow path authoritatively; the slow-path entry point
  // adopts the cookie and reports the packet's fate back to the guard.
  std::uint64_t guard_cookie = 0;
  // GRO super-packet state: one entry per coalesced segment, in arrival
  // order (skb_shinfo gso_segs analogue). Empty for ordinary packets; a
  // packet with >= 2 entries is resegmented by dev_xmit before it reaches a
  // device (net::gso_segment).
  std::vector<GroSeg> gro_segs;
  // Number of wire segments this packet represents (>= 1). Counters that
  // account "packets" on the slow path scale by this so a coalesced run is
  // indistinguishable from per-segment processing in every packet count.
  std::uint32_t gso_segs() const {
    return gro_segs.size() > 1 ? static_cast<std::uint32_t>(gro_segs.size())
                               : 1u;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t offset_;
};

}  // namespace linuxfp::net
