#include "net/packet.h"
