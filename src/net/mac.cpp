#include "net/mac.h"

#include <cstdio>

namespace linuxfp::net {

MacAddr MacAddr::from_id(std::uint32_t id) {
  std::array<std::uint8_t, 6> b{};
  b[0] = 0x02;  // locally administered, unicast
  b[1] = 0x00;
  b[2] = static_cast<std::uint8_t>(id >> 24);
  b[3] = static_cast<std::uint8_t>(id >> 16);
  b[4] = static_cast<std::uint8_t>(id >> 8);
  b[5] = static_cast<std::uint8_t>(id);
  return MacAddr(b);
}

util::Result<MacAddr> MacAddr::parse(const std::string& text) {
  std::array<std::uint8_t, 6> b{};
  unsigned v[6];
  if (std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &v[0], &v[1], &v[2],
                  &v[3], &v[4], &v[5]) != 6) {
    return util::Error::make("mac.parse", "bad MAC address: " + text);
  }
  for (int i = 0; i < 6; ++i) {
    if (v[i] > 0xff) {
      return util::Error::make("mac.parse", "MAC octet out of range: " + text);
    }
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v[i]);
  }
  return MacAddr(b);
}

MacAddr MacAddr::broadcast() {
  return MacAddr({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
}

bool MacAddr::is_broadcast() const {
  for (auto b : bytes_) {
    if (b != 0xff) return false;
  }
  return true;
}

bool MacAddr::is_zero() const {
  for (auto b : bytes_) {
    if (b != 0) return false;
  }
  return true;
}

std::uint64_t MacAddr::as_u64() const {
  std::uint64_t v = 0;
  for (auto b : bytes_) v = (v << 8) | b;
  return v;
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace linuxfp::net
