// Protocol header views and packet builders.
//
// Views are non-owning accessors over packet bytes; all multi-byte fields are
// big-endian on the wire and exposed in host order. Callers are responsible
// for length validation before constructing a view (the kernel slow path and
// the eBPF verifier each enforce this on their own paths, mirroring Linux).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/ipaddr.h"
#include "net/mac.h"
#include "net/packet.h"

namespace linuxfp::net {

// EtherTypes / protocol numbers.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

inline constexpr std::size_t kEthHdrLen = 14;
inline constexpr std::size_t kVlanHdrLen = 4;
inline constexpr std::size_t kIpv4HdrLen = 20;  // no options in our traffic
inline constexpr std::size_t kUdpHdrLen = 8;
inline constexpr std::size_t kTcpHdrLen = 20;
inline constexpr std::size_t kIcmpHdrLen = 8;
inline constexpr std::size_t kArpLen = 28;
inline constexpr std::size_t kVxlanHdrLen = 8;
inline constexpr std::uint16_t kVxlanPort = 8472;  // Linux/flannel default

// Raw big-endian accessors.
std::uint16_t load_be16(const std::uint8_t* p);
std::uint32_t load_be32(const std::uint8_t* p);
void store_be16(std::uint8_t* p, std::uint16_t v);
void store_be32(std::uint8_t* p, std::uint32_t v);

class EthernetView {
 public:
  explicit EthernetView(std::uint8_t* base) : base_(base) {}

  MacAddr dst() const;
  MacAddr src() const;
  std::uint16_t ethertype() const { return load_be16(base_ + 12); }

  void set_dst(const MacAddr& mac);
  void set_src(const MacAddr& mac);
  void set_ethertype(std::uint16_t type) { store_be16(base_ + 12, type); }

 private:
  std::uint8_t* base_;
};

class VlanView {
 public:
  // base points at the 4-byte 802.1Q tag (right after the src MAC).
  explicit VlanView(std::uint8_t* base) : base_(base) {}
  std::uint16_t tci() const { return load_be16(base_); }
  std::uint16_t vid() const { return tci() & 0x0fff; }
  std::uint8_t pcp() const { return static_cast<std::uint8_t>(tci() >> 13); }
  std::uint16_t inner_ethertype() const { return load_be16(base_ + 2); }
  void set_tci(std::uint16_t tci) { store_be16(base_, tci); }
  void set_inner_ethertype(std::uint16_t t) { store_be16(base_ + 2, t); }

 private:
  std::uint8_t* base_;
};

class Ipv4View {
 public:
  explicit Ipv4View(std::uint8_t* base) : base_(base) {}

  std::uint8_t version() const { return base_[0] >> 4; }
  std::uint8_t ihl() const { return base_[0] & 0x0f; }
  std::size_t header_len() const { return std::size_t{ihl()} * 4; }
  std::uint16_t total_len() const { return load_be16(base_ + 2); }
  std::uint16_t id() const { return load_be16(base_ + 4); }
  std::uint16_t frag_field() const { return load_be16(base_ + 6); }
  bool more_fragments() const { return (frag_field() & 0x2000) != 0; }
  std::uint16_t frag_offset() const { return frag_field() & 0x1fff; }
  bool is_fragment() const { return more_fragments() || frag_offset() != 0; }
  std::uint8_t ttl() const { return base_[8]; }
  std::uint8_t protocol() const { return base_[9]; }
  std::uint16_t checksum() const { return load_be16(base_ + 10); }
  Ipv4Addr src() const { return Ipv4Addr(load_be32(base_ + 12)); }
  Ipv4Addr dst() const { return Ipv4Addr(load_be32(base_ + 16)); }

  void set_total_len(std::uint16_t v) { store_be16(base_ + 2, v); }
  void set_id(std::uint16_t v) { store_be16(base_ + 4, v); }
  void set_frag_field(std::uint16_t v) { store_be16(base_ + 6, v); }
  void set_ttl(std::uint8_t v) { base_[8] = v; }
  void set_protocol(std::uint8_t v) { base_[9] = v; }
  void set_checksum(std::uint16_t v) { store_be16(base_ + 10, v); }
  void set_src(Ipv4Addr a) { store_be32(base_ + 12, a.value()); }
  void set_dst(Ipv4Addr a) { store_be32(base_ + 16, a.value()); }

  // Recomputes the header checksum from scratch.
  void update_checksum();
  bool checksum_valid() const;

  // Decrements TTL and incrementally fixes the checksum, exactly like the
  // kernel's ip_decrease_ttl.
  void decrement_ttl();

 private:
  std::uint8_t* base_;
};

class UdpView {
 public:
  explicit UdpView(std::uint8_t* base) : base_(base) {}
  std::uint16_t src_port() const { return load_be16(base_); }
  std::uint16_t dst_port() const { return load_be16(base_ + 2); }
  std::uint16_t length() const { return load_be16(base_ + 4); }
  void set_src_port(std::uint16_t v) { store_be16(base_, v); }
  void set_dst_port(std::uint16_t v) { store_be16(base_ + 2, v); }
  void set_length(std::uint16_t v) { store_be16(base_ + 4, v); }
  void set_checksum(std::uint16_t v) { store_be16(base_ + 6, v); }

 private:
  std::uint8_t* base_;
};

class TcpView {
 public:
  explicit TcpView(std::uint8_t* base) : base_(base) {}
  std::uint16_t src_port() const { return load_be16(base_); }
  std::uint16_t dst_port() const { return load_be16(base_ + 2); }
  std::uint32_t seq() const { return load_be32(base_ + 4); }
  std::uint32_t ack() const { return load_be32(base_ + 8); }
  std::uint8_t flags() const { return base_[13]; }
  bool syn() const { return (flags() & 0x02) != 0; }
  bool ack_flag() const { return (flags() & 0x10) != 0; }
  bool fin() const { return (flags() & 0x01) != 0; }
  bool rst() const { return (flags() & 0x04) != 0; }
  void set_src_port(std::uint16_t v) { store_be16(base_, v); }
  void set_dst_port(std::uint16_t v) { store_be16(base_ + 2, v); }
  void set_seq(std::uint32_t v) { store_be32(base_ + 4, v); }
  void set_ack(std::uint32_t v) { store_be32(base_ + 8, v); }
  void set_flags(std::uint8_t v) { base_[13] = v; }
  void set_data_offset_words(std::uint8_t words) {
    base_[12] = static_cast<std::uint8_t>(words << 4);
  }

 private:
  std::uint8_t* base_;
};

class IcmpView {
 public:
  explicit IcmpView(std::uint8_t* base) : base_(base) {}
  std::uint8_t type() const { return base_[0]; }
  std::uint8_t code() const { return base_[1]; }
  std::uint16_t ident() const { return load_be16(base_ + 4); }
  std::uint16_t sequence() const { return load_be16(base_ + 6); }
  void set_type(std::uint8_t v) { base_[0] = v; }
  void set_code(std::uint8_t v) { base_[1] = v; }
  void set_ident(std::uint16_t v) { store_be16(base_ + 4, v); }
  void set_sequence(std::uint16_t v) { store_be16(base_ + 6, v); }
  void update_checksum(std::size_t icmp_len);

 private:
  std::uint8_t* base_;
};

struct ArpFields {
  std::uint16_t opcode = 0;  // 1=request, 2=reply
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;
};

class ArpView {
 public:
  explicit ArpView(std::uint8_t* base) : base_(base) {}
  ArpFields read() const;
  void write(const ArpFields& fields);

 private:
  std::uint8_t* base_;
};

class VxlanView {
 public:
  explicit VxlanView(std::uint8_t* base) : base_(base) {}
  std::uint32_t vni() const { return load_be32(base_ + 4) >> 8; }
  void set_vni(std::uint32_t vni) {
    base_[0] = 0x08;  // flags: VNI valid
    base_[1] = base_[2] = base_[3] = 0;
    store_be32(base_ + 4, vni << 8);
  }

 private:
  std::uint8_t* base_;
};

// --- Parsed summary ---------------------------------------------------------

// A decoded summary of the outermost headers; convenience for tests and the
// slow-path dispatcher (the fast path parses bytes itself).
struct ParsedPacket {
  MacAddr eth_dst;
  MacAddr eth_src;
  std::uint16_t ethertype = 0;  // inner type when a VLAN tag is present
  bool has_vlan = false;
  std::uint16_t vlan_id = 0;
  std::size_t l3_offset = 0;

  bool has_ipv4 = false;
  Ipv4Addr ip_src;
  Ipv4Addr ip_dst;
  std::uint8_t ip_proto = 0;
  std::uint8_t ttl = 0;
  bool ip_fragment = false;
  std::size_t l4_offset = 0;

  bool has_ports = false;  // UDP or TCP
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

// Returns nullopt if the packet is too short for the headers it claims.
std::optional<ParsedPacket> parse_packet(const Packet& pkt);

// --- Builders ---------------------------------------------------------------

struct FlowKey {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint8_t proto = kIpProtoUdp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  bool operator==(const FlowKey&) const = default;
};

// Builds an Ethernet+IPv4+UDP packet of exactly `frame_len` bytes (>= 60 and
// >= the header stack); payload is zeroed.
Packet build_udp_packet(const MacAddr& eth_src, const MacAddr& eth_dst,
                        const FlowKey& flow, std::size_t frame_len,
                        std::uint8_t ttl = 64);

// Builds an Ethernet+IPv4+TCP packet; flags is the TCP flags byte.
Packet build_tcp_packet(const MacAddr& eth_src, const MacAddr& eth_dst,
                        const FlowKey& flow, std::uint8_t flags,
                        std::size_t frame_len, std::uint8_t ttl = 64);

Packet build_arp_request(const MacAddr& sender_mac, Ipv4Addr sender_ip,
                         Ipv4Addr target_ip);
Packet build_arp_reply(const MacAddr& sender_mac, Ipv4Addr sender_ip,
                       const MacAddr& target_mac, Ipv4Addr target_ip);

Packet build_icmp_echo(const MacAddr& eth_src, const MacAddr& eth_dst,
                       Ipv4Addr src_ip, Ipv4Addr dst_ip, bool is_reply,
                       std::uint16_t ident, std::uint16_t seq);

// Inserts an 802.1Q tag after the source MAC (packet grows by 4 bytes).
void insert_vlan_tag(Packet& pkt, std::uint16_t vid);
// Removes the 802.1Q tag; precondition: packet is tagged.
void strip_vlan_tag(Packet& pkt);

// GSO resegmentation: splits a GRO super-packet (pkt.gro_segs.size() >= 2)
// back into its original wire segments. Each segment carries the (possibly
// rewritten) super-packet headers with per-segment fields restored from the
// recorded GroSeg metadata: IP total_len/id, TCP seq (base + cumulative
// payload) or UDP length, the original L4 checksum bytes, and a freshly
// computed IP header checksum. Precondition: the super-packet was built by
// GroEngine (contiguous standard headers, no VLAN/options). The returned
// segments have empty gro_segs.
std::vector<Packet> gso_segment(const Packet& pkt);

// VXLAN encapsulation: pushes outer Ethernet+IPv4+UDP+VXLAN in the headroom.
void vxlan_encap(Packet& pkt, std::uint32_t vni, const MacAddr& outer_src_mac,
                 const MacAddr& outer_dst_mac, Ipv4Addr outer_src,
                 Ipv4Addr outer_dst, std::uint16_t src_port_entropy);
// Removes the outer headers; precondition: packet is a VXLAN frame.
void vxlan_decap(Packet& pkt);

}  // namespace linuxfp::net

template <>
struct std::hash<linuxfp::net::FlowKey> {
  std::size_t operator()(const linuxfp::net::FlowKey& f) const noexcept {
    // splitmix64 finalizer so every tuple bit affects the low bits (RSS
    // queue selection uses hash % nqueues).
    std::uint64_t x = (std::uint64_t{f.src_ip.value()} << 32) |
                      f.dst_ip.value();
    x ^= (std::uint64_t{f.src_port} << 24) ^ (std::uint64_t{f.dst_port} << 8) ^
         f.proto;
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
