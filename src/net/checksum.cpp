#include "net/checksum.h"

namespace linuxfp::net {

std::uint16_t checksum_fold(const std::uint8_t* data, std::size_t len,
                            std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len) {
  return static_cast<std::uint16_t>(~checksum_fold(data, len));
}

std::uint16_t checksum_update16(std::uint16_t old_csum, std::uint16_t old_val,
                                std::uint16_t new_val) {
  // HC' = ~(~HC + ~m + m') per RFC 1624.
  std::uint32_t sum = static_cast<std::uint16_t>(~old_csum);
  sum += static_cast<std::uint16_t>(~old_val);
  sum += new_val;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace linuxfp::net
