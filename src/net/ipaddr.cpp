#include "net/ipaddr.h"

#include <cstdio>

#include "util/logging.h"
#include "util/strings.h"

namespace linuxfp::net {

util::Result<Ipv4Addr> Ipv4Addr::parse(const std::string& text) {
  unsigned a, b, c, d;
  char tail;
  int matched =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return util::Error::make("ip.parse", "bad IPv4 address: " + text);
  }
  return Ipv4Addr::from_octets(static_cast<std::uint8_t>(a),
                               static_cast<std::uint8_t>(b),
                               static_cast<std::uint8_t>(c),
                               static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value_ >> 24,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Addr addr, std::uint8_t prefix_len)
    : prefix_len_(prefix_len) {
  LFP_CHECK_MSG(prefix_len <= 32, "prefix length out of range");
  network_ = Ipv4Addr(addr.value() & mask());
}

util::Result<Ipv4Prefix> Ipv4Prefix::parse(const std::string& text) {
  auto parts = util::split(text, '/');
  if (parts.size() > 2) {
    return util::Error::make("prefix.parse", "bad prefix: " + text);
  }
  auto addr = Ipv4Addr::parse(parts[0]);
  if (!addr.ok()) return addr.error();
  std::uint8_t len = 32;
  if (parts.size() == 2) {
    unsigned long long v;
    if (!util::parse_u64(parts[1], v) || v > 32) {
      return util::Error::make("prefix.parse", "bad prefix length: " + text);
    }
    len = static_cast<std::uint8_t>(v);
  }
  return Ipv4Prefix(addr.value(), len);
}

std::uint32_t Ipv4Prefix::mask() const {
  if (prefix_len_ == 0) return 0;
  return 0xffffffffu << (32 - prefix_len_);
}

bool Ipv4Prefix::contains(Ipv4Addr addr) const {
  return (addr.value() & mask()) == network_.value();
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const {
  return other.prefix_len() >= prefix_len_ && contains(other.network());
}

Ipv4Addr Ipv4Prefix::host(std::uint32_t k) const {
  return Ipv4Addr(network_.value() | (k & ~mask()));
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(prefix_len_);
}

util::Result<IfAddr> IfAddr::parse(const std::string& text) {
  auto parts = util::split(text, '/');
  if (parts.size() > 2) {
    return util::Error::make("ifaddr.parse", "bad address: " + text);
  }
  auto addr = Ipv4Addr::parse(parts[0]);
  if (!addr.ok()) return addr.error();
  std::uint8_t len = 32;
  if (parts.size() == 2) {
    unsigned long long v;
    if (!util::parse_u64(parts[1], v) || v > 32) {
      return util::Error::make("ifaddr.parse", "bad prefix length: " + text);
    }
    len = static_cast<std::uint8_t>(v);
  }
  return IfAddr{addr.value(), len};
}

}  // namespace linuxfp::net
